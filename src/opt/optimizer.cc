#include "opt/optimizer.h"

#include <cstdio>

#include "core/extended.h"
#include "opt/chain.h"
#include "rig/rig.h"

namespace regal {

namespace {

// Truncated rendering for RewriteEvent: lowered expansions can be huge.
std::string NodeString(const ExprPtr& e) {
  std::string s = e->ToString();
  if (s.size() > 120) {
    s.resize(117);
    s += "...";
  }
  return s;
}

// Records one firing of `rule` rewriting `before` into `after`.
void RecordEvent(const char* rule, const ExprPtr& before, const ExprPtr& after,
                 const OptimizerOptions& options,
                 std::vector<RewriteEvent>* events) {
  RewriteEvent event;
  event.rule = rule;
  event.before = NodeString(before);
  event.after = NodeString(after);
  event.cost_before = EstimateCost(before, options.stats);
  event.cost_after = EstimateCost(after, options.stats);
  events->push_back(std::move(event));
}

// Rewrites every ⊃_d / ⊂_d node into its Prop 5.2 bounded expansion.
// Sound for instances satisfying the (acyclic) RIG, whose nesting depth is
// bounded by `depth`.
ExprPtr LowerExtended(const ExprPtr& expr, int depth,
                      const std::vector<std::string>& catalog,
                      const OptimizerOptions& options, int* applied,
                      std::vector<RewriteEvent>* events) {
  std::vector<ExprPtr> children;
  bool changed = false;
  for (const ExprPtr& c : expr->children()) {
    ExprPtr nc = LowerExtended(c, depth, catalog, options, applied, events);
    changed |= (nc.get() != c.get());
    children.push_back(std::move(nc));
  }
  switch (expr->kind()) {
    case OpKind::kDirectIncluding: {
      ++*applied;
      ExprPtr lowered =
          DirectIncludingBounded(children[0], children[1], depth, catalog);
      RecordEvent("lower-dincluding", expr, lowered, options, events);
      return lowered;
    }
    case OpKind::kDirectIncluded: {
      ++*applied;
      ExprPtr lowered =
          DirectIncludedBounded(children[0], children[1], depth, catalog);
      RecordEvent("lower-dwithin", expr, lowered, options, events);
      return lowered;
    }
    default:
      break;
  }
  if (!changed) return expr;
  switch (expr->kind()) {
    case OpKind::kSelect:
      return Expr::Select(expr->pattern(), children[0]);
    case OpKind::kBothIncluded:
      return Expr::BothIncluded(children[0], children[1], children[2]);
    default:
      return Expr::Binary(expr->kind(), children[0], children[1]);
  }
}

// One bottom-up rewrite pass. Increments *applied per rule firing.
ExprPtr RewriteOnce(const ExprPtr& expr, const OptimizerOptions& options,
                    int* applied, std::vector<RewriteEvent>* events) {
  // Rewrite children first.
  ExprPtr node = expr;
  if (!node->children().empty()) {
    std::vector<ExprPtr> new_children;
    bool changed = false;
    for (const ExprPtr& c : node->children()) {
      ExprPtr nc = RewriteOnce(c, options, applied, events);
      changed |= (nc.get() != c.get());
      new_children.push_back(std::move(nc));
    }
    if (changed) {
      switch (node->kind()) {
        case OpKind::kSelect:
          node = Expr::Select(node->pattern(), new_children[0]);
          break;
        case OpKind::kBothIncluded:
          node = Expr::BothIncluded(new_children[0], new_children[1],
                                    new_children[2]);
          break;
        default:
          node = Expr::Binary(node->kind(), new_children[0], new_children[1]);
          break;
      }
    }
  }

  // Rule 1: identity set operations. Sound for all instances: the set
  // operations are idempotent and σ_p is a filter (σ_p∘σ_p = σ_p).
  if ((node->kind() == OpKind::kUnion || node->kind() == OpKind::kIntersect) &&
      node->child(0)->Equals(*node->child(1))) {
    ++*applied;
    RecordEvent(node->kind() == OpKind::kUnion ? "union-idempotent"
                                               : "intersect-idempotent",
                node, node->child(0), options, events);
    return node->child(0);
  }
  if (node->kind() == OpKind::kSelect &&
      node->child(0)->kind() == OpKind::kSelect &&
      node->pattern().CacheKey() == node->child(0)->pattern().CacheKey()) {
    ++*applied;
    RecordEvent("select-dedup", node, node->child(0), options, events);
    return node->child(0);
  }

  // Rule 2: RIG chain shortening (sound w.r.t. instances satisfying the
  // RIG; see opt/chain.h for the separator argument).
  if (options.rig != nullptr) {
    std::optional<InclusionChain> chain = ParseInclusionChain(node);
    if (chain.has_value() && chain->names.size() > 2) {
      InclusionChain optimized = OptimizeInclusionChain(*options.rig, *chain);
      if (optimized.names.size() < chain->names.size()) {
        *applied +=
            static_cast<int>(chain->names.size() - optimized.names.size());
        ExprPtr shortened = ChainToExpr(optimized);
        RecordEvent("chain-shorten", node, shortened, options, events);
        return shortened;
      }
    }
  }
  return node;
}

}  // namespace

std::string RewriteEvent::ToString() const {
  char costs[96];
  std::snprintf(costs, sizeof(costs), " (cost %.4g -> %.4g, est rows %.4g -> %.4g)",
                cost_before.cost, cost_after.cost, cost_before.cardinality,
                cost_after.cardinality);
  return rule + ": " + before + " -> " + after + costs;
}

OptimizeOutcome Optimize(const ExprPtr& expr, const OptimizerOptions& options) {
  OptimizeOutcome outcome;
  outcome.cost_before = EstimateCost(expr, options.stats);
  ExprPtr current = expr;
  int total_applied = 0;
  if (options.lower_extended_operators && options.rig != nullptr) {
    auto bound = RigNestingBound(*options.rig);
    if (bound.ok()) {
      int applied = 0;
      current = LowerExtended(current, *bound, options.rig->Labels(), options,
                              &applied, &outcome.rewrites);
      total_applied += applied;
    }
  }
  for (int pass = 0; pass < options.max_passes; ++pass) {
    int applied = 0;
    std::vector<RewriteEvent> pass_events;
    ExprPtr next = RewriteOnce(current, options, &applied, &pass_events);
    // Rule 3: cost guard. A rejected pass drops its events too — they were
    // never applied.
    if (applied == 0) break;
    CostEstimate next_cost = EstimateCost(next, options.stats);
    CostEstimate current_cost = EstimateCost(current, options.stats);
    if (next_cost.cost > current_cost.cost) break;
    current = next;
    total_applied += applied;
    for (RewriteEvent& event : pass_events) {
      outcome.rewrites.push_back(std::move(event));
    }
  }
  outcome.expr = current;
  outcome.rules_applied = total_applied;
  outcome.cost_after = EstimateCost(current, options.stats);
  return outcome;
}

std::vector<ExprPtr> EnumerateExpressions(
    const std::vector<std::string>& names,
    const std::vector<Pattern>& patterns, int max_ops) {
  // by_size[s] = all expressions with exactly s operators.
  std::vector<std::vector<ExprPtr>> by_size(static_cast<size_t>(max_ops + 1));
  for (const std::string& name : names) {
    by_size[0].push_back(Expr::Name(name));
  }
  const OpKind kBinaryOps[] = {
      OpKind::kUnion,    OpKind::kIntersect, OpKind::kDifference,
      OpKind::kIncluding, OpKind::kIncluded, OpKind::kPrecedes,
      OpKind::kFollows};
  for (int s = 1; s <= max_ops; ++s) {
    auto& out = by_size[static_cast<size_t>(s)];
    // Selections over size s-1.
    for (const Pattern& p : patterns) {
      for (const ExprPtr& e : by_size[static_cast<size_t>(s - 1)]) {
        out.push_back(Expr::Select(p, e));
      }
    }
    // Binary operators over size pairs (i, s-1-i).
    for (int i = 0; i <= s - 1; ++i) {
      for (const ExprPtr& a : by_size[static_cast<size_t>(i)]) {
        for (const ExprPtr& b : by_size[static_cast<size_t>(s - 1 - i)]) {
          for (OpKind op : kBinaryOps) {
            out.push_back(Expr::Binary(op, a, b));
          }
        }
      }
    }
  }
  std::vector<ExprPtr> all;
  for (const auto& bucket : by_size) {
    all.insert(all.end(), bucket.begin(), bucket.end());
  }
  return all;
}

}  // namespace regal
