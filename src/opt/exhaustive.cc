#include "opt/exhaustive.h"

#include <algorithm>

#include "core/eval.h"
#include "doc/synthetic.h"
#include "opt/optimizer.h"
#include "util/random.h"

namespace regal {

Result<ExhaustiveOptimizeOutcome> OptimizeByEnumeration(
    const ExprPtr& e, const ExhaustiveOptimizeOptions& options) {
  ExhaustiveOptimizeOutcome outcome;
  outcome.expr = e;
  outcome.cost = EstimateCost(e, options.stats).cost;

  std::vector<std::string> names = options.candidate_names;
  if (names.empty()) {
    names = (options.rig != nullptr) ? options.rig->Labels() : e->NamesUsed();
  }
  if (names.empty()) {
    return Status::InvalidArgument("expression mentions no region names");
  }
  std::vector<ExprPtr> candidates =
      EnumerateExpressions(names, e->PatternsUsed(), options.max_candidate_ops);
  outcome.candidates_considered = static_cast<int64_t>(candidates.size());

  // Screening panel: generated instances on which every surviving
  // candidate must already agree with e. This keeps the expensive bounded
  // equivalence check for a handful of candidates.
  std::vector<Pattern> patterns = e->PatternsUsed();
  Rng rng(2718);
  std::vector<Instance> panel;
  std::vector<RegionSet> expected;
  for (int i = 0; i < options.screening_instances; ++i) {
    Instance instance = [&] {
      if (options.rig != nullptr) {
        return RandomInstanceForRig(rng, *options.rig, 24, 6);
      }
      RandomInstanceOptions rio;
      rio.num_regions = 24;
      rio.names = names;
      return RandomLaminarInstance(rng, rio);
    }();
    for (const std::string& name : names) {
      if (!instance.Has(name)) instance.SetRegionSet(name, RegionSet());
    }
    AssignRandomPatterns(&instance, rng, patterns, 0.3);
    auto result = Evaluate(instance, e);
    if (!result.ok()) return result.status();
    expected.push_back(std::move(result).value());
    panel.push_back(std::move(instance));
  }

  // Price every candidate, then test cheapest-first so the first hit is
  // the optimum within the candidate space.
  std::vector<std::pair<double, const ExprPtr*>> priced;
  priced.reserve(candidates.size());
  for (const ExprPtr& candidate : candidates) {
    double cost = EstimateCost(candidate, options.stats).cost;
    if (cost < outcome.cost) priced.emplace_back(cost, &candidate);
  }
  std::sort(priced.begin(), priced.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  for (const auto& [cost, candidate] : priced) {
    bool survives = true;
    for (size_t i = 0; i < panel.size(); ++i) {
      auto result = Evaluate(panel[i], *candidate);
      if (!result.ok() || !(*result == expected[i])) {
        survives = false;
        break;
      }
    }
    if (!survives) continue;
    ++outcome.equivalence_checks;
    REGAL_ASSIGN_OR_RETURN(
        EmptinessReport report,
        CheckEquivalence(e, *candidate, options.equivalence, options.rig));
    if (!report.witness_found) {
      outcome.expr = *candidate;
      outcome.cost = cost;
      return outcome;
    }
  }
  return outcome;
}

}  // namespace regal
