#ifndef REGAL_OPT_CHAIN_H_
#define REGAL_OPT_CHAIN_H_

#include <optional>
#include <string>
#include <vector>

#include "core/expr.h"
#include "graph/digraph.h"
#include "util/status.h"

namespace regal {

/// The polynomial-time optimizer for *inclusion expressions* (Section 5.1,
/// citing [CM94]): right-grouped chains N1 ∘ N2 ∘ ... ∘ Nk over region
/// names where ∘ is uniformly `within` (⊂) or `including` (⊃).
///
/// A middle name N_i is redundant w.r.t. a RIG G exactly when N_i is a
/// vertex separator in G between the adjacent names — every downward RIG
/// path from the container side to the containee side passes through N_i,
/// so the witnessing region is guaranteed to exist (this is the paper's
/// Section 2.2 example: Proc may be dropped from
/// Name ⊂ Proc_header ⊂ Proc ⊂ Program because every path from Program to
/// Proc_header goes through Proc).

/// A parsed chain: uniform operator + names, outermost-first for ⊃ chains
/// and innermost-first for ⊂ chains (i.e. in expression order).
struct InclusionChain {
  OpKind op = OpKind::kIncluded;  // kIncluded (within) or kIncluding.
  std::vector<std::string> names;
};

/// Recognizes a right-grouped uniform chain of ⊂ or ⊃ over names.
/// Returns nullopt for anything else.
std::optional<InclusionChain> ParseInclusionChain(const ExprPtr& expr);

/// Rebuilds the expression for a chain.
ExprPtr ChainToExpr(const InclusionChain& chain);

/// True iff dropping `names[index]` (a middle element) preserves
/// equivalence w.r.t. the RIG.
bool IsRedundantChainElement(const Digraph& rig, const InclusionChain& chain,
                             size_t index);

/// Removes redundant middle elements until none remains (greedy fixpoint;
/// O(k^2) separator tests, each a DFS — polynomial, per Section 5.1).
/// Names absent from the RIG are never removed and block removals across
/// them (conservative).
InclusionChain OptimizeInclusionChain(const Digraph& rig,
                                      const InclusionChain& chain);

}  // namespace regal

#endif  // REGAL_OPT_CHAIN_H_
