#ifndef REGAL_OPT_EXHAUSTIVE_H_
#define REGAL_OPT_EXHAUSTIVE_H_

#include "core/expr.h"
#include "fmft/emptiness.h"
#include "graph/digraph.h"
#include "opt/cost.h"
#include "util/status.h"

namespace regal {

/// The optimization procedure of Section 3, verbatim: "To optimize an
/// expression e we can look for an equivalent expression with lowest
/// price (because of the assumptions we need to check only a finite
/// number of expressions). Two expressions e1, e2 are equivalent iff
/// (e1 − e2) ∪ (e2 − e1) is empty for all instances."
///
/// Exact equivalence is Co-NP-hard (Theorem 3.5); this implementation uses
/// the bounded checker, so the result is equivalent *within the checked
/// instance space* — candidates that survive exhaustive small-model
/// enumeration plus randomized sampling. The diagnostics record how many
/// candidates were priced and how many equivalence checks ran.
struct ExhaustiveOptimizeOptions {
  int max_candidate_ops = 2;       // Candidate expressions up to this size.
  const Digraph* rig = nullptr;    // Equivalence w.r.t. the RIG (Thm 3.6).
  CatalogStats stats;              // The price function's cardinalities.
  EmptinessOptions equivalence;    // Bounds for the equivalence checks.
  int screening_instances = 24;    // Cheap pre-filter: candidates must match
                                   // e on this many generated instances
                                   // before the full bounded check runs.
  // Candidate name universe; defaults to the RIG's labels (when set) or
  // e's own names.
  std::vector<std::string> candidate_names;
};

struct ExhaustiveOptimizeOutcome {
  ExprPtr expr;                 // Cheapest equivalent found (maybe input).
  double cost = 0;
  int64_t candidates_considered = 0;
  int64_t equivalence_checks = 0;
};

/// Searches all base-algebra expressions over e's names/patterns with at
/// most `max_candidate_ops` operators, cheapest first, and returns the
/// first bounded-equivalent one. Falls back to e itself when no cheaper
/// candidate is equivalent. Errors only on malformed inputs (extended
/// operators are fine in `e` — candidates are still base algebra, so a
/// successful result is also a lowering).
Result<ExhaustiveOptimizeOutcome> OptimizeByEnumeration(
    const ExprPtr& e, const ExhaustiveOptimizeOptions& options);

}  // namespace regal

#endif  // REGAL_OPT_EXHAUSTIVE_H_
