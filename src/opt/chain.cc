#include "opt/chain.h"

#include "graph/algorithms.h"

namespace regal {

std::optional<InclusionChain> ParseInclusionChain(const ExprPtr& expr) {
  if (expr->kind() != OpKind::kIncluded && expr->kind() != OpKind::kIncluding) {
    return std::nullopt;
  }
  InclusionChain chain;
  chain.op = expr->kind();
  const Expr* node = expr.get();
  while (true) {
    if (node->kind() == OpKind::kName) {
      chain.names.push_back(node->name());
      return chain;
    }
    if (node->kind() != chain.op) return std::nullopt;
    if (node->child(0)->kind() != OpKind::kName) return std::nullopt;
    chain.names.push_back(node->child(0)->name());
    node = node->child(1).get();
  }
}

ExprPtr ChainToExpr(const InclusionChain& chain) {
  return Expr::Chain(chain.op, chain.names);
}

bool IsRedundantChainElement(const Digraph& rig, const InclusionChain& chain,
                             size_t index) {
  if (index == 0 || index + 1 >= chain.names.size()) return false;
  // For `within` chains the container side is names[index+1]; for
  // `including` chains it is names[index-1]. RIG edges point container ->
  // containee, so the separator test always runs downward.
  const std::string& container = (chain.op == OpKind::kIncluded)
                                     ? chain.names[index + 1]
                                     : chain.names[index - 1];
  const std::string& containee = (chain.op == OpKind::kIncluded)
                                     ? chain.names[index - 1]
                                     : chain.names[index + 1];
  const std::string& via = chain.names[index];
  auto from = rig.FindNode(container);
  auto to = rig.FindNode(containee);
  auto mid = rig.FindNode(via);
  if (!from.ok() || !to.ok() || !mid.ok()) return false;
  if (*from == *mid || *to == *mid) return false;
  return IsVertexSeparator(rig, *from, *to, *mid);
}

InclusionChain OptimizeInclusionChain(const Digraph& rig,
                                      const InclusionChain& chain) {
  InclusionChain current = chain;
  bool changed = true;
  while (changed && current.names.size() > 2) {
    changed = false;
    for (size_t i = 1; i + 1 < current.names.size(); ++i) {
      if (IsRedundantChainElement(rig, current, i)) {
        current.names.erase(current.names.begin() + static_cast<long>(i));
        changed = true;
        break;
      }
    }
  }
  return current;
}

}  // namespace regal
