#ifndef REGAL_OPT_OPTIMIZER_H_
#define REGAL_OPT_OPTIMIZER_H_

#include <string>
#include <vector>

#include "core/expr.h"
#include "graph/digraph.h"
#include "opt/cost.h"
#include "text/pattern.h"

namespace regal {

/// The rule-based + cost-guided optimizer. Each rewrite rule is sound by
/// construction (documented per rule in optimizer.cc); the RIG-dependent
/// rules are sound w.r.t. instances satisfying the RIG (equivalence in the
/// sense of Definition 2.5), and the randomized equivalence tester in the
/// test suite cross-checks them.
struct OptimizerOptions {
  const Digraph* rig = nullptr;  // Enables RIG-dependent rules when set.
  CatalogStats stats;            // Cardinalities for cost comparison.
  int max_passes = 8;
  /// When true and the RIG is acyclic, ⊃_d / ⊂_d nodes are *lowered* into
  /// the pure base-algebra expansions of Prop 5.2 (nesting depth bounded
  /// by the RIG's longest path). This lets a backend without native direct
  /// operators run such queries; it is exempt from the cost guard because
  /// the expansion is intentionally larger.
  bool lower_extended_operators = false;
};

/// One rewrite-rule firing, recorded for observability: which rule, the
/// node it rewrote, and the cost model's view of that node before and
/// after. `explain` surfaces these so estimated-vs-actual effects are
/// visible per rewrite instead of being re-derived by callers.
struct RewriteEvent {
  std::string rule;    // "union-idempotent", "chain-shorten", ...
  std::string before;  // Node rendering pre-rewrite.
  std::string after;   // Node rendering post-rewrite.
  CostEstimate cost_before;  // EstimateCost of the node pre-rewrite.
  CostEstimate cost_after;   // ... and post-rewrite.

  /// "rule: before -> after (cost c1 -> c2, est rows r1 -> r2)".
  std::string ToString() const;
};

struct OptimizeOutcome {
  ExprPtr expr;
  int rules_applied = 0;
  CostEstimate cost_before;
  CostEstimate cost_after;
  /// Every rule firing the optimizer kept, in application order. Firings in
  /// a pass discarded by the cost guard are not reported.
  std::vector<RewriteEvent> rewrites;
};

/// Rewrites `expr` into a cheaper equivalent. Rules:
///  1. Identity set ops:  e∪e → e,  e∩e → e,  e−e → (empty via e∩(e−e))...
///     implemented as e∪e→e, e∩e→e, σ_p(σ_p(e))→σ_p(e).
///  2. RIG chain shortening: redundant middle names of uniform ⊂/⊃ chains
///     removed when the RIG proves them implied (opt/chain.h). Applied to
///     every chain-shaped subexpression.
///  3. Cost guard: a rewrite is kept only if the estimated cost does not
///     increase.
OptimizeOutcome Optimize(const ExprPtr& expr, const OptimizerOptions& options);

/// All base-algebra expressions over the given names/patterns with at most
/// `max_ops` operators, for exhaustive-search harnesses (the Theorem 5.1
/// empirical inexpressibility check and brute-force optimization tests).
/// Grows super-exponentially; keep max_ops <= 3 for 2-3 names.
std::vector<ExprPtr> EnumerateExpressions(
    const std::vector<std::string>& names,
    const std::vector<Pattern>& patterns, int max_ops);

}  // namespace regal

#endif  // REGAL_OPT_OPTIMIZER_H_
