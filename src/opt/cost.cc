#include "opt/cost.h"

#include <algorithm>
#include <cmath>

namespace regal {

CatalogStats StatsFromInstance(const Instance& instance) {
  CatalogStats stats;
  for (const std::string& name : instance.names()) {
    stats.cardinality[name] =
        static_cast<double>((*instance.Get(name))->size());
  }
  stats.default_cardinality = 0;
  return stats;
}

namespace {

constexpr double kOperatorOverhead = 8.0;
constexpr double kIndexProbeCharge = 16.0;
constexpr double kSemiJoinSelectivity = 0.5;

}  // namespace

CostEstimate EstimateCost(const ExprPtr& expr, const CatalogStats& stats) {
  switch (expr->kind()) {
    case OpKind::kName:
      return CostEstimate{0, stats.Cardinality(expr->name())};
    case OpKind::kWordMatch:
      // One index probe; cardinality defaults (no per-pattern statistics).
      return CostEstimate{kIndexProbeCharge, stats.default_cardinality};
    case OpKind::kSelect: {
      CostEstimate child = EstimateCost(expr->child(0), stats);
      return CostEstimate{
          child.cost + child.cardinality + kIndexProbeCharge +
              kOperatorOverhead,
          child.cardinality * kSemiJoinSelectivity};
    }
    case OpKind::kBothIncluded: {
      CostEstimate r = EstimateCost(expr->child(0), stats);
      CostEstimate s = EstimateCost(expr->child(1), stats);
      CostEstimate t = EstimateCost(expr->child(2), stats);
      double inputs = r.cardinality + s.cardinality + t.cardinality;
      return CostEstimate{r.cost + s.cost + t.cost +
                              inputs * std::log2(inputs + 2) +
                              kOperatorOverhead,
                          r.cardinality * kSemiJoinSelectivity};
    }
    default: {
      CostEstimate a = EstimateCost(expr->child(0), stats);
      CostEstimate b = EstimateCost(expr->child(1), stats);
      double cost = a.cost + b.cost + kOperatorOverhead;
      double cardinality = 0;
      switch (expr->kind()) {
        case OpKind::kUnion:
          cost += a.cardinality + b.cardinality;
          cardinality = a.cardinality + b.cardinality;
          break;
        case OpKind::kIntersect:
          cost += a.cardinality + b.cardinality;
          cardinality = std::min(a.cardinality, b.cardinality) *
                        kSemiJoinSelectivity;
          break;
        case OpKind::kDifference:
          cost += a.cardinality + b.cardinality;
          cardinality = a.cardinality * kSemiJoinSelectivity;
          break;
        case OpKind::kPrecedes:
        case OpKind::kFollows:
          cost += a.cardinality + b.cardinality;
          cardinality = a.cardinality * kSemiJoinSelectivity;
          break;
        default: {  // Structural semi-joins (⊃ ⊂ ⊃_d ⊂_d).
          double pass = (a.cardinality + b.cardinality) *
                        std::log2(b.cardinality + 2);
          // The direct variants consult the whole instance tree (or run
          // the §6 loop program), not just their operands: surcharge.
          if (expr->kind() == OpKind::kDirectIncluding ||
              expr->kind() == OpKind::kDirectIncluded) {
            pass *= 2;
          }
          cost += pass;
          cardinality = a.cardinality * kSemiJoinSelectivity;
          break;
        }
      }
      return CostEstimate{cost, cardinality};
    }
  }
}

}  // namespace regal
