#ifndef REGAL_OPT_COST_H_
#define REGAL_OPT_COST_H_

#include <map>
#include <string>

#include "core/expr.h"
#include "core/instance.h"

namespace regal {

/// Per-name cardinalities used by the price function (the paper's "price
/// function p estimating the expected cost of an algebra expression").
struct CatalogStats {
  std::map<std::string, double> cardinality;
  double default_cardinality = 1000;

  double Cardinality(const std::string& name) const {
    auto it = cardinality.find(name);
    return it == cardinality.end() ? default_cardinality : it->second;
  }
};

/// Exact cardinalities from an instance.
CatalogStats StatsFromInstance(const Instance& instance);

/// Cost/cardinality estimate for an expression.
struct CostEstimate {
  double cost = 0;         // Total abstract work units.
  double cardinality = 0;  // Estimated result size.
};

/// A simple price function satisfying the paper's assumption that "every
/// operation adds some cost to the price of an expression" (so the set of
/// cheaper expressions is finite):
///  * set operations and order semi-joins cost |L| + |R|;
///  * structural semi-joins cost (|L| + |R|) * log2(|R| + 2);
///  * selections cost |L| + a fixed index-probe charge;
/// each operator additionally pays a fixed per-operator overhead, and
/// selectivities shrink semi-join outputs by 1/2.
CostEstimate EstimateCost(const ExprPtr& expr, const CatalogStats& stats);

}  // namespace regal

#endif  // REGAL_OPT_COST_H_
