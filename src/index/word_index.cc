#include "index/word_index.h"

#include <algorithm>

#include "exec/parallel_text.h"
#include "exec/thread_pool.h"
#include "obs/counters.h"
#include "obs/metrics.h"
#include "safety/failpoint.h"
#include "util/stringutil.h"

namespace regal {

namespace {

// Degrade failpoint for index construction: a nullptr pool is the documented
// strictly-sequential build, so firing simply reroutes there while recording
// the fallback for explain/metrics consumers.
exec::ThreadPool* MaybeDegradeBuild(exec::ThreadPool* pool, const char* index) {
  if (pool == nullptr || !safety::FailpointFires("index.build.degrade")) {
    return pool;
  }
  obs::Registry::Default()
      .GetCounter("regal_safety_index_build_fallbacks_total",
                  {{"index", index}})
      ->Increment();
  return nullptr;
}

}  // namespace

bool WordIndex::Contains(Offset left, Offset right, const Pattern& p) const {
  // Default implementation in terms of Matches; subclasses may override
  // with early-exit variants.
  for (const Token& t : Matches(p)) {
    if (t.left >= left && t.right <= right) return true;
    if (t.left > right) break;
  }
  return false;
}

SuffixArrayWordIndex::SuffixArrayWordIndex(const Text* text)
    : SuffixArrayWordIndex(text, &exec::ThreadPool::Default()) {}

SuffixArrayWordIndex::SuffixArrayWordIndex(const Text* text,
                                           exec::ThreadPool* pool)
    // tokens_ is declared before suffix_array_, so the degrade decision made
    // in its initializer is the pool suffix_array_ sees too.
    : text_(text),
      tokens_(exec::ParallelTokenize(
          text->content(), pool = MaybeDegradeBuild(pool, "suffix_array"))),
      suffix_array_(ToLowerAscii(text->content()), pool) {}

int32_t SuffixArrayWordIndex::TokenAt(int32_t pos) const {
  // Rightmost token with left <= pos.
  auto it = std::upper_bound(
      tokens_.begin(), tokens_.end(), pos,
      [](int32_t p, const Token& t) { return p < t.left; });
  if (it == tokens_.begin()) return -1;
  --it;
  if (it->right < pos) return -1;
  return static_cast<int32_t>(it - tokens_.begin());
}

std::vector<Token> SuffixArrayWordIndex::Matches(const Pattern& p) const {
  std::vector<Token> out;
  std::string_view original(text_->content());
  const std::string& core = p.LiteralCore();
  if (core.empty()) {
    // Body is all '?': scan tokens directly.
    for (const Token& t : tokens_) {
      if (p.MatchesToken(TokenText(original, t))) out.push_back(t);
    }
    if (obs::OpCounters* sink = obs::CountersSink()) {
      sink->index_probes += static_cast<int64_t>(tokens_.size());
      sink->comparisons += static_cast<int64_t>(tokens_.size());
    }
    return out;
  }
  // The suffix array is over lower-cased text, so search the lower-cased
  // core; case-sensitive patterns are re-verified on the original text by
  // MatchesToken below.
  std::vector<int32_t> occurrences =
      suffix_array_.Occurrences(ToLowerAscii(core));
  int64_t verifications = 0;
  int32_t last_token = -1;
  for (int32_t pos : occurrences) {
    int32_t token_id = TokenAt(pos);
    if (token_id < 0 || token_id == last_token) continue;
    last_token = token_id;
    const Token& t = tokens_[static_cast<size_t>(token_id)];
    ++verifications;
    if (p.MatchesToken(TokenText(original, t))) out.push_back(t);
  }
  if (obs::OpCounters* sink = obs::CountersSink()) {
    // One probe per suffix-array occurrence, one comparison per full-pattern
    // verification against a candidate token.
    sink->index_probes += static_cast<int64_t>(occurrences.size());
    sink->comparisons += verifications;
  }
  // Occurrences are in text order and each token is considered once (its
  // first core hit), so `out` is already sorted; dedup defensively.
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

InvertedWordIndex::InvertedWordIndex(const Text* text)
    : InvertedWordIndex(text, &exec::ThreadPool::Default()) {}

InvertedWordIndex::InvertedWordIndex(const Text* text, exec::ThreadPool* pool)
    : text_(text) {
  pool = MaybeDegradeBuild(pool, "inverted");
  postings_ = exec::ParallelPostings(text->content(), pool, &num_tokens_);
}

std::vector<Token> InvertedWordIndex::Matches(const Pattern& p) const {
  std::vector<Token> out;
  int64_t probes = 0;
  int64_t comparisons = 0;
  const bool exact = p.anchored_front() && p.anchored_back() &&
                     !p.case_insensitive() &&
                     p.body().find('?') == std::string::npos;
  if (exact) {
    probes = 1;
    auto it = postings_.find(p.body());
    if (it != postings_.end()) out = it->second;
  } else {
    // Prefix patterns narrow the vocabulary scan via the ordered map; all
    // other shapes scan the whole vocabulary (still never the raw text).
    auto begin = postings_.begin();
    auto end = postings_.end();
    if (p.anchored_front() && !p.case_insensitive() && p.CoreOffsetInBody() == 0 &&
        !p.LiteralCore().empty()) {
      const std::string& core = p.LiteralCore();
      begin = postings_.lower_bound(core);
      std::string upper = core;
      upper.back() = static_cast<char>(upper.back() + 1);
      end = postings_.lower_bound(upper);
    }
    for (auto it = begin; it != end; ++it) {
      ++probes;
      ++comparisons;
      if (p.MatchesToken(it->first)) {
        out.insert(out.end(), it->second.begin(), it->second.end());
      }
    }
    std::sort(out.begin(), out.end(), [](const Token& a, const Token& b) {
      return a.left != b.left ? a.left < b.left : a.right < b.right;
    });
  }
  if (obs::OpCounters* sink = obs::CountersSink()) {
    sink->index_probes += probes;
    sink->comparisons += comparisons;
  }
  return out;
}

}  // namespace regal
