#ifndef REGAL_INDEX_WORD_INDEX_H_
#define REGAL_INDEX_WORD_INDEX_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "index/suffix_array.h"
#include "text/pattern.h"
#include "text/text.h"
#include "text/tokenizer.h"

namespace regal {

/// The word index W of Definition 2.1, as an abstract interface: W(r, p)
/// holds iff some token fully contained in the inclusive byte range
/// [left, right] matches pattern p.
///
/// Two implementations are provided and cross-checked in the tests:
/// SuffixArrayWordIndex (the PAT-array approach of the commercial system the
/// paper studies) and InvertedWordIndex (the classic IR structure).
class WordIndex {
 public:
  virtual ~WordIndex() = default;

  /// All tokens matching `p`, sorted by (left, right). The evaluator calls
  /// this once per selection and then tests containment per region.
  virtual std::vector<Token> Matches(const Pattern& p) const = 0;

  /// W(r, p) for r = [left, right].
  virtual bool Contains(Offset left, Offset right, const Pattern& p) const;

  /// Number of distinct tokens in the indexed text (for cost estimation).
  virtual int64_t NumTokens() const = 0;
};

namespace exec {
class ThreadPool;
}  // namespace exec

/// Word index backed by a suffix array over the lower-cased text. Pattern
/// lookups binary-search the literal core of the pattern, then verify the
/// enclosing token against the full pattern on the original text.
///
/// Construction parallelizes the tokenize and suffix-sort phases on the exec
/// thread pool; the built index is identical for every thread count (see
/// exec/parallel_text.h and SuffixArray).
class SuffixArrayWordIndex : public WordIndex {
 public:
  /// Builds the index on the default thread pool. `text` must outlive the
  /// index.
  explicit SuffixArrayWordIndex(const Text* text);

  /// As above on `pool`; nullptr builds strictly sequentially.
  SuffixArrayWordIndex(const Text* text, exec::ThreadPool* pool);

  std::vector<Token> Matches(const Pattern& p) const override;
  int64_t NumTokens() const override { return static_cast<int64_t>(tokens_.size()); }

  const SuffixArray& suffix_array() const { return suffix_array_; }

 private:
  /// Token enclosing text offset `pos`, or -1.
  int32_t TokenAt(int32_t pos) const;

  const Text* text_;
  std::vector<Token> tokens_;  // Sorted by left.
  SuffixArray suffix_array_;   // Over the lower-cased text.
};

/// Word index backed by a vocabulary -> postings map. Exact and prefix
/// patterns use the sorted vocabulary directly; other patterns scan the
/// vocabulary (never the text).
class InvertedWordIndex : public WordIndex {
 public:
  /// Builds the postings map on the default thread pool (chunked tokenize
  /// with per-chunk maps merged in text order — identical to a sequential
  /// build for every thread count).
  explicit InvertedWordIndex(const Text* text);

  /// As above on `pool`; nullptr builds strictly sequentially.
  InvertedWordIndex(const Text* text, exec::ThreadPool* pool);

  std::vector<Token> Matches(const Pattern& p) const override;
  int64_t NumTokens() const override { return num_tokens_; }

  /// Vocabulary size (distinct token strings, case-sensitive).
  int64_t VocabularySize() const { return static_cast<int64_t>(postings_.size()); }

 private:
  const Text* text_;
  // Ordered map doubles as the sorted vocabulary for prefix scans.
  std::map<std::string, std::vector<Token>> postings_;
  int64_t num_tokens_ = 0;
};

}  // namespace regal

#endif  // REGAL_INDEX_WORD_INDEX_H_
