#ifndef REGAL_INDEX_SUFFIX_ARRAY_H_
#define REGAL_INDEX_SUFFIX_ARRAY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace regal {

namespace exec {
class ThreadPool;
}  // namespace exec

/// A suffix array with LCP information — the modern equivalent of the PAT
/// array underlying the Open Text PAT system [Gon87, Ope93] whose algebra
/// the paper studies. Construction is prefix-doubling (O(n log^2 n)), which
/// is ample for the corpus sizes the benchmarks sweep; each doubling round's
/// sort runs on the exec thread pool. Ranks within a round break ties by
/// suffix index (a strict total order), so construction is deterministic and
/// identical for every thread count, including fully sequential.
class SuffixArray {
 public:
  SuffixArray() = default;

  /// Builds the suffix array of `text` on the default thread pool.
  explicit SuffixArray(std::string text);

  /// As above on `pool`; nullptr builds strictly sequentially.
  SuffixArray(std::string text, exec::ThreadPool* pool);

  /// The indexed text.
  const std::string& text() const { return text_; }

  /// sa()[i] = starting offset of the i-th suffix in lexicographic order.
  const std::vector<int32_t>& sa() const { return sa_; }

  /// lcp()[i] = longest common prefix length of suffixes sa()[i-1], sa()[i];
  /// lcp()[0] = 0. Computed by Kasai's algorithm.
  const std::vector<int32_t>& lcp() const { return lcp_; }

  /// The half-open range [lo, hi) of suffix-array slots whose suffixes start
  /// with `prefix` (binary search, O(|prefix| log n)). Empty range if none.
  std::pair<int32_t, int32_t> EqualRange(std::string_view prefix) const;

  /// Text offsets of all occurrences of `prefix`, in increasing text order.
  std::vector<int32_t> Occurrences(std::string_view prefix) const;

  /// Number of occurrences of `prefix`.
  int64_t Count(std::string_view prefix) const;

 private:
  std::string text_;
  std::vector<int32_t> sa_;
  std::vector<int32_t> lcp_;
};

}  // namespace regal

#endif  // REGAL_INDEX_SUFFIX_ARRAY_H_
