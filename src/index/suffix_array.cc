#include "index/suffix_array.h"

#include <algorithm>
#include <numeric>

#include "exec/parallel_sort.h"
#include "exec/thread_pool.h"

namespace regal {

SuffixArray::SuffixArray(std::string text)
    : SuffixArray(std::move(text), &exec::ThreadPool::Default()) {}

SuffixArray::SuffixArray(std::string text, exec::ThreadPool* pool)
    : text_(std::move(text)) {
  const int32_t n = static_cast<int32_t>(text_.size());
  sa_.resize(static_cast<size_t>(n));
  std::iota(sa_.begin(), sa_.end(), 0);
  if (n == 0) return;

  // rank[i] = equivalence class of suffix i by its first `len` chars.
  std::vector<int32_t> rank(static_cast<size_t>(n));
  std::vector<int32_t> next_rank(static_cast<size_t>(n));
  for (int32_t i = 0; i < n; ++i) {
    rank[static_cast<size_t>(i)] =
        static_cast<unsigned char>(text_[static_cast<size_t>(i)]);
  }
  for (int32_t len = 1;; len *= 2) {
    auto key = [&](int32_t i) {
      int32_t second = (i + len < n) ? rank[static_cast<size_t>(i + len)] : -1;
      return std::pair<int32_t, int32_t>(rank[static_cast<size_t>(i)], second);
    };
    // Tie-break equal keys by suffix index: a strict total order makes every
    // round's output independent of the sort algorithm and lane count.
    exec::ParallelSort(
        &sa_,
        [&](int32_t a, int32_t b) {
          auto ka = key(a);
          auto kb = key(b);
          if (ka != kb) return ka < kb;
          return a < b;
        },
        pool);
    next_rank[static_cast<size_t>(sa_[0])] = 0;
    for (int32_t i = 1; i < n; ++i) {
      next_rank[static_cast<size_t>(sa_[static_cast<size_t>(i)])] =
          next_rank[static_cast<size_t>(sa_[static_cast<size_t>(i - 1)])] +
          (key(sa_[static_cast<size_t>(i - 1)]) < key(sa_[static_cast<size_t>(i)])
               ? 1
               : 0);
    }
    rank.swap(next_rank);
    if (rank[static_cast<size_t>(sa_[static_cast<size_t>(n - 1)])] == n - 1) {
      break;
    }
  }

  // Kasai's LCP construction.
  lcp_.assign(static_cast<size_t>(n), 0);
  std::vector<int32_t> inverse(static_cast<size_t>(n));
  for (int32_t i = 0; i < n; ++i) {
    inverse[static_cast<size_t>(sa_[static_cast<size_t>(i)])] = i;
  }
  int32_t h = 0;
  for (int32_t i = 0; i < n; ++i) {
    int32_t slot = inverse[static_cast<size_t>(i)];
    if (slot == 0) {
      h = 0;
      continue;
    }
    int32_t j = sa_[static_cast<size_t>(slot - 1)];
    while (i + h < n && j + h < n &&
           text_[static_cast<size_t>(i + h)] == text_[static_cast<size_t>(j + h)]) {
      ++h;
    }
    lcp_[static_cast<size_t>(slot)] = h;
    if (h > 0) --h;
  }
}

std::pair<int32_t, int32_t> SuffixArray::EqualRange(
    std::string_view prefix) const {
  std::string_view text(text_);
  auto starts_less = [&](int32_t suffix_start, std::string_view p) {
    return text.substr(static_cast<size_t>(suffix_start), p.size()) < p;
  };
  auto p_less = [&](std::string_view p, int32_t suffix_start) {
    return p < text.substr(static_cast<size_t>(suffix_start), p.size());
  };
  auto lo = std::lower_bound(sa_.begin(), sa_.end(), prefix, starts_less);
  auto hi = std::upper_bound(lo, sa_.end(), prefix, p_less);
  return {static_cast<int32_t>(lo - sa_.begin()),
          static_cast<int32_t>(hi - sa_.begin())};
}

std::vector<int32_t> SuffixArray::Occurrences(std::string_view prefix) const {
  auto [lo, hi] = EqualRange(prefix);
  std::vector<int32_t> out(sa_.begin() + lo, sa_.begin() + hi);
  std::sort(out.begin(), out.end());
  return out;
}

int64_t SuffixArray::Count(std::string_view prefix) const {
  auto [lo, hi] = EqualRange(prefix);
  return hi - lo;
}

}  // namespace regal
