#include "doc/dictionary.h"

namespace regal {

std::string GenerateDictionarySource(
    const DictionaryGeneratorOptions& options) {
  Rng rng(options.seed);
  auto word = [&] {
    return "term" + std::to_string(rng.Below(static_cast<uint64_t>(
                        std::max(1, options.vocabulary))));
  };
  const char* authors[] = {"CHAUCER", "SHAKESPEARE", "MILTON",
                           "JOHNSON", "AUSTEN",      "DICKENS"};
  const char* pos[] = {"n", "v", "adj", "adv"};
  std::string out = "<dictionary>\n";
  for (int e = 0; e < options.entries; ++e) {
    out += "<entry>\n<headword>hw" + std::to_string(e) + "</headword>";
    out += "<pos>";
    out += pos[rng.Below(4)];
    out += "</pos>\n";
    int senses = static_cast<int>(1 + rng.Below(static_cast<uint64_t>(
                                          std::max(1, options.max_senses))));
    for (int s = 0; s < senses; ++s) {
      out += "<sense>\n<def>";
      int len = static_cast<int>(3 + rng.Below(8));
      for (int w = 0; w < len; ++w) {
        if (w > 0) out += ' ';
        out += word();
      }
      out += "</def>\n";
      int quotes = static_cast<int>(
          rng.Below(static_cast<uint64_t>(options.max_quotes_per_sense + 1)));
      for (int q = 0; q < quotes; ++q) {
        out += "<quote><date>";
        out += std::to_string(1400 + rng.Below(500));
        out += "</date><author>";
        out += authors[rng.Below(6)];
        out += "</author><qtext>";
        int qlen = static_cast<int>(3 + rng.Below(6));
        for (int w = 0; w < qlen; ++w) {
          if (w > 0) out += ' ';
          out += word();
        }
        out += "</qtext></quote>\n";
      }
      out += "</sense>\n";
    }
    out += "</entry>\n";
  }
  out += "</dictionary>\n";
  return out;
}

Digraph DictionaryRig() {
  Digraph g;
  g.AddEdge("dictionary", "entry");
  g.AddEdge("entry", "headword");
  g.AddEdge("entry", "pos");
  g.AddEdge("entry", "sense");
  g.AddEdge("sense", "def");
  g.AddEdge("sense", "quote");
  g.AddEdge("quote", "date");
  g.AddEdge("quote", "author");
  g.AddEdge("quote", "qtext");
  return g;
}

}  // namespace regal
