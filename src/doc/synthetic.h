#ifndef REGAL_DOC_SYNTHETIC_H_
#define REGAL_DOC_SYNTHETIC_H_

#include <string>
#include <vector>

#include "core/instance.h"
#include "graph/digraph.h"
#include "util/random.h"
#include "util/status.h"

namespace regal {

/// A node of a forest specification: a region name plus children. Offsets
/// are assigned automatically (each node spans its children with one unit
/// of padding on each side), yielding a valid hierarchical instance.
struct NodeSpec {
  std::string name;
  std::vector<NodeSpec> children;
};

/// Builds an instance from an ordered forest of NodeSpecs.
Instance FromForest(const std::vector<NodeSpec>& forest);

/// The Figure 2 counterexample family (Theorem 5.1): a nested spine of
/// `depth` B regions (B directly including B — the configuration the proof
/// deletes from), with direct A children at a deterministic pseudo-random
/// subset of levels (always including the innermost). B ⊃_d A selects
/// exactly the A-carrying levels while B ⊃ A selects every B; the
/// expressiveness harness checks that no small base-algebra expression
/// tracks the difference across depths.
Instance MakeFigure2Instance(int depth);

/// The Figure 3 counterexample family (Theorem 5.3): 4k+1 sibling C
/// regions; each contains an A followed by a B, except the middle one
/// (position 2k+1) which contains A, then B, then a second A. Hence
/// C BI (B, A) = {the middle C} while every deletion-blind expression
/// with at most k order operators must treat the middle C like its
/// neighbours.
Instance MakeFigure3Instance(int k);

/// Options for random hierarchical instances.
struct RandomInstanceOptions {
  int num_regions = 50;
  int max_depth = 6;
  int max_names = 3;        // Region names "R0".."R{max_names-1}".
  double sibling_bias = 0.5;  // Probability a new region opens a sibling
                              // rather than nesting deeper.
  // When non-empty, overrides max_names with this explicit name list.
  std::vector<std::string> names;
};

/// A random hierarchical instance (laminar, each region in one name).
/// Used by the property tests as the distribution over which efficient and
/// naive operators are compared.
Instance RandomLaminarInstance(Rng& rng, const RandomInstanceOptions& options);

/// A random instance *satisfying the given RIG* (Definition 2.4): region
/// names are the RIG's node labels; children of a region named X are drawn
/// from X's out-neighbors. Roots are drawn from `root_labels` (or all
/// labels when empty). `num_regions` is approximate (the generator stops
/// expanding once reached).
Instance RandomInstanceForRig(Rng& rng, const Digraph& rig, int num_regions,
                              int max_depth,
                              const std::vector<std::string>& root_labels = {});

/// Assigns each pattern in `patterns` to each instance region independently
/// with probability `prob` (synthetic W mode). This realizes the fully
/// general word index of Definition 2.1.
void AssignRandomPatterns(Instance* instance, Rng& rng,
                          const std::vector<Pattern>& patterns, double prob);

}  // namespace regal

#endif  // REGAL_DOC_SYNTHETIC_H_
