#include "doc/sgml.h"

#include <map>
#include <memory>
#include <vector>

#include "safety/failpoint.h"
#include "util/random.h"
#include "util/stringutil.h"

namespace regal {

Result<Instance> ParseSgml(const std::string& source) {
  struct OpenTag {
    std::string name;
    Offset left;
  };
  std::vector<OpenTag> stack;
  std::map<std::string, std::vector<Region>> sets;
  for (size_t i = 0; i < source.size(); ++i) {
    if (source[i] != '<') continue;
    size_t close = source.find('>', i);
    if (close == std::string::npos) {
      return Status::InvalidArgument("unterminated tag at offset " +
                                     std::to_string(i));
    }
    bool is_end = i + 1 < source.size() && source[i + 1] == '/';
    size_t name_start = i + (is_end ? 2 : 1);
    size_t name_end = name_start;
    while (name_end < close && IsIdentChar(source[name_end])) ++name_end;
    std::string name = source.substr(name_start, name_end - name_start);
    if (name.empty()) {
      return Status::InvalidArgument("tag with empty name at offset " +
                                     std::to_string(i));
    }
    if (is_end) {
      if (stack.empty() || stack.back().name != name) {
        return Status::InvalidArgument(
            "mismatched close tag </" + name + "> at offset " +
            std::to_string(i));
      }
      sets[name].push_back(
          Region{stack.back().left, static_cast<Offset>(close)});
      stack.pop_back();
    } else {
      stack.push_back(OpenTag{name, static_cast<Offset>(i)});
    }
    i = close;
  }
  if (!stack.empty()) {
    return Status::InvalidArgument("unclosed tag <" + stack.back().name + ">");
  }
  REGAL_RETURN_NOT_OK(safety::CheckFailpoint("index.build"));
  Instance instance;
  for (auto& [name, regions] : sets) {
    instance.SetRegionSet(name, RegionSet::FromUnsorted(std::move(regions)));
  }
  auto text = std::make_shared<Text>(source);
  auto index = std::make_shared<SuffixArrayWordIndex>(text.get());
  instance.BindText(text, std::move(index));
  return instance;
}

std::string GeneratePlaySource(const PlayGeneratorOptions& options) {
  Rng rng(options.seed);
  auto word = [&] {
    return "word" + std::to_string(rng.Below(static_cast<uint64_t>(
                        std::max(1, options.vocabulary))));
  };
  std::string out = "<play>\n<title>The Synthetic Tragedy</title>\n";
  const char* speakers[] = {"HAMLET", "OPHELIA", "GERTRUDE", "CLAUDIUS",
                            "HORATIO", "LAERTES"};
  for (int a = 1; a <= options.acts; ++a) {
    out += "<act>\n";
    for (int s = 1; s <= options.scenes_per_act; ++s) {
      out += "<scene>\n";
      for (int sp = 0; sp < options.speeches_per_scene; ++sp) {
        out += "<speech>\n<speaker>";
        out += speakers[rng.Below(6)];
        out += "</speaker>\n";
        for (int l = 0; l < options.lines_per_speech; ++l) {
          out += "<line>";
          int words = static_cast<int>(4 + rng.Below(5));
          for (int w = 0; w < words; ++w) {
            if (w > 0) out += ' ';
            out += word();
          }
          out += "</line>\n";
        }
        out += "</speech>\n";
      }
      out += "</scene>\n";
    }
    out += "</act>\n";
  }
  out += "</play>\n";
  return out;
}

Digraph PlayRig() {
  Digraph g;
  g.AddEdge("play", "title");
  g.AddEdge("play", "act");
  g.AddEdge("act", "scene");
  g.AddEdge("scene", "speech");
  g.AddEdge("speech", "speaker");
  g.AddEdge("speech", "line");
  return g;
}

}  // namespace regal
