#ifndef REGAL_DOC_SRCCODE_H_
#define REGAL_DOC_SRCCODE_H_

#include <string>

#include "core/instance.h"
#include "graph/digraph.h"
#include "util/random.h"
#include "util/status.h"

namespace regal {

/// A toy structured programming language realizing the running example of
/// Sections 2.2 and 5 (Figure 1): programs with a header (name), variable
/// declarations, and arbitrarily nested procedure definitions.
///
///   program Main;
///   var x;
///   proc Alpha;
///     var z;
///     proc Beta; var x; begin write z end;
///   begin call Beta end;
///   begin call Alpha end.
///
/// ParseProgram produces an instance with region names
///   Program, Prog_header, Prog_body, Proc, Proc_header, Proc_body,
///   Var, Name
/// whose RIG is exactly Figure 1 (see SourceCodeRig), and binds a
/// suffix-array word index over the source so selections work.

/// Figure 1's region inclusion graph.
Digraph SourceCodeRig();

/// Knobs for the program generator.
struct ProgramGeneratorOptions {
  int num_procs = 10;        // Total procedure count.
  int max_nesting = 3;       // Max proc-inside-proc depth.
  int max_vars_per_scope = 3;
  int vocabulary = 8;        // Distinct variable names "v0".."v{n-1}".
  uint64_t seed = 1;
};

/// Generates a random well-formed program source.
std::string GenerateProgramSource(const ProgramGeneratorOptions& options);

/// Parses a program and builds its region instance (text-backed).
/// Errors on malformed input with a line/column message.
Result<Instance> ParseProgram(const std::string& source);

}  // namespace regal

#endif  // REGAL_DOC_SRCCODE_H_
