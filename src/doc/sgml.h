#ifndef REGAL_DOC_SGML_H_
#define REGAL_DOC_SGML_H_

#include <string>

#include "core/instance.h"
#include "graph/digraph.h"
#include "util/status.h"

namespace regal {

/// A minimal SGML/XML-style markup parser: `<tag ...>` opens a region,
/// `</tag>` closes it; tags must nest properly. One region name per tag
/// name; a region spans from the '<' of the open tag to the '>' of the
/// close tag inclusive, so nested tags yield strictly nested regions. The
/// result is text-backed (suffix-array word index), ready for σ_p.
///
/// This realizes the paper's motivating setting ("documents in digital
/// form ... markup conventions (as it is the case with SGML)").
Result<Instance> ParseSgml(const std::string& source);

/// Knobs for the synthetic play generator (an OED/Shakespeare-flavoured
/// document corpus: play > act > scene > speech > speaker/line).
struct PlayGeneratorOptions {
  int acts = 3;
  int scenes_per_act = 3;
  int speeches_per_scene = 8;
  int lines_per_speech = 3;
  int vocabulary = 50;  // Distinct words "word0".."word{n-1}".
  uint64_t seed = 7;
};

/// Generates SGML markup for a synthetic play.
std::string GeneratePlaySource(const PlayGeneratorOptions& options);

/// The RIG of the generated plays:
/// play > act > scene > speech > {speaker, line}.
Digraph PlayRig();

}  // namespace regal

#endif  // REGAL_DOC_SGML_H_
