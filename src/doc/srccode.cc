#include "doc/srccode.h"

#include <map>
#include <memory>
#include <vector>

#include "safety/failpoint.h"
#include "text/tokenizer.h"
#include "util/stringutil.h"

namespace regal {

Digraph SourceCodeRig() {
  Digraph g;
  g.AddEdge("Program", "Prog_header");
  g.AddEdge("Program", "Prog_body");
  g.AddEdge("Prog_header", "Name");
  g.AddEdge("Prog_body", "Var");
  g.AddEdge("Prog_body", "Proc");
  g.AddEdge("Proc", "Proc_header");
  g.AddEdge("Proc", "Proc_body");
  g.AddEdge("Proc_header", "Name");
  g.AddEdge("Proc_body", "Var");
  g.AddEdge("Proc_body", "Proc");
  return g;
}

namespace {

class ProgramGenerator {
 public:
  explicit ProgramGenerator(const ProgramGeneratorOptions& options)
      : options_(options), rng_(options.seed) {}

  std::string Generate() {
    out_ = "program Main;\n";
    procs_left_ = options_.num_procs;
    EmitScope(1);
    out_ += "begin call_something end.\n";
    return out_;
  }

 private:
  std::string Indent(int depth) { return std::string(static_cast<size_t>(depth) * 2, ' '); }

  std::string RandomVar() {
    return "v" + std::to_string(rng_.Below(
                     static_cast<uint64_t>(std::max(1, options_.vocabulary))));
  }

  // Emits var declarations and nested procs for one scope.
  void EmitScope(int depth) {
    int vars = static_cast<int>(
        rng_.Below(static_cast<uint64_t>(options_.max_vars_per_scope + 1)));
    for (int i = 0; i < vars; ++i) {
      out_ += Indent(depth) + "var " + RandomVar() + ";\n";
    }
    while (procs_left_ > 0) {
      // Spend the proc budget: nest deeper with decreasing probability.
      if (depth > 1 && rng_.Chance(0.5)) break;
      --procs_left_;
      std::string name = "p" + std::to_string(proc_counter_++);
      out_ += Indent(depth) + "proc " + name + ";\n";
      if (depth < options_.max_nesting) {
        EmitScope(depth + 1);
      } else {
        int inner_vars = static_cast<int>(rng_.Below(
            static_cast<uint64_t>(options_.max_vars_per_scope + 1)));
        for (int i = 0; i < inner_vars; ++i) {
          out_ += Indent(depth + 1) + "var " + RandomVar() + ";\n";
        }
      }
      out_ += Indent(depth) + "begin write " + RandomVar() + " end;\n";
    }
  }

  ProgramGeneratorOptions options_;
  Rng rng_;
  std::string out_;
  int procs_left_ = 0;
  int proc_counter_ = 0;
};

// Token with byte extent, produced by the parser's scanner.
struct SrcToken {
  std::string text;
  Offset left;
  Offset right;  // Inclusive.
};

class ProgramParser {
 public:
  explicit ProgramParser(const std::string& source) : source_(source) {
    for (const Token& t : Tokenize(source)) {
      tokens_.push_back(SrcToken{
          std::string(TokenText(source, t)), t.left, t.right});
    }
    // Also scan single-char punctuation (';' and '.') as tokens, merged in
    // offset order, so the parser can anchor region boundaries.
    std::vector<SrcToken> merged;
    size_t w = 0;
    for (size_t i = 0; i < source.size(); ++i) {
      char c = source[i];
      while (w < tokens_.size() &&
             tokens_[w].left == static_cast<Offset>(i)) {
        merged.push_back(tokens_[w]);
        i = static_cast<size_t>(tokens_[w].right);
        ++w;
        c = 0;
        break;
      }
      if (c == ';' || c == '.') {
        merged.push_back(SrcToken{std::string(1, c), static_cast<Offset>(i),
                                  static_cast<Offset>(i)});
      }
    }
    tokens_ = std::move(merged);
  }

  Result<Instance> Parse() {
    REGAL_RETURN_NOT_OK(ParseProgramRule());
    REGAL_RETURN_NOT_OK(safety::CheckFailpoint("index.build"));
    Instance instance;
    for (auto& [name, regions] : sets_) {
      instance.SetRegionSet(name, RegionSet::FromUnsorted(std::move(regions)));
    }
    for (const char* name : {"Program", "Prog_header", "Prog_body", "Proc",
                             "Proc_header", "Proc_body", "Var", "Name"}) {
      if (!instance.Has(name)) instance.SetRegionSet(name, RegionSet());
    }
    auto text = std::make_shared<Text>(source_);
    auto index = std::make_shared<SuffixArrayWordIndex>(text.get());
    instance.BindText(text, std::move(index));
    return instance;
  }

 private:
  bool AtEnd() const { return pos_ >= tokens_.size(); }
  const SrcToken& Peek() const { return tokens_[pos_]; }

  Status Fail(const std::string& message) {
    std::string at = AtEnd() ? "<eof>" : tokens_[pos_].text;
    return Status::InvalidArgument(message + " (at '" + at + "', token " +
                                   std::to_string(pos_) + ")");
  }

  Status Expect(const std::string& text) {
    if (AtEnd() || Peek().text != text) {
      return Fail("expected '" + text + "'");
    }
    ++pos_;
    return Status::OK();
  }

  Result<SrcToken> ExpectIdent() {
    if (AtEnd() || !IsIdentChar(Peek().text[0])) {
      return Fail("expected an identifier");
    }
    return tokens_[pos_++];
  }

  void Emit(const std::string& name, Offset left, Offset right) {
    sets_[name].push_back(Region{left, right});
  }

  // Program := "program" Name ";" Block "."
  Status ParseProgramRule() {
    if (AtEnd()) return Fail("empty program");
    Offset prog_left = Peek().left;
    Offset header_left = Peek().left;
    REGAL_RETURN_NOT_OK(Expect("program"));
    REGAL_ASSIGN_OR_RETURN(SrcToken name, ExpectIdent());
    Emit("Name", name.left, name.right);
    Emit("Prog_header", header_left, name.right);
    REGAL_RETURN_NOT_OK(Expect(";"));
    Offset body_right = 0;
    REGAL_ASSIGN_OR_RETURN(Offset body_left, ParseBlock(&body_right));
    Emit("Prog_body", body_left, body_right);
    if (AtEnd() || Peek().text != ".") return Fail("expected '.'");
    Offset dot_right = Peek().right;
    ++pos_;
    Emit("Program", prog_left, dot_right);
    if (!AtEnd()) return Fail("trailing input after final '.'");
    return Status::OK();
  }

  // Block := { VarDecl | ProcDecl } "begin" Stmts "end"
  // Returns the left offset; writes the right offset (of "end") via out.
  Result<Offset> ParseBlock(Offset* right_out) {
    if (AtEnd()) return Fail("expected a block");
    Offset left = Peek().left;
    while (!AtEnd()) {
      if (Peek().text == "var") {
        Offset var_left = Peek().left;
        ++pos_;
        REGAL_ASSIGN_OR_RETURN(SrcToken name, ExpectIdent());
        Emit("Var", var_left, name.right);
        REGAL_RETURN_NOT_OK(Expect(";"));
      } else if (Peek().text == "proc") {
        REGAL_RETURN_NOT_OK(ParseProc());
      } else {
        break;
      }
    }
    REGAL_RETURN_NOT_OK(Expect("begin"));
    REGAL_RETURN_NOT_OK(SkipStatements(right_out));
    return left;
  }

  // Proc := "proc" Name ";" Block ";"
  Status ParseProc() {
    Offset proc_left = Peek().left;
    Offset header_left = Peek().left;
    REGAL_RETURN_NOT_OK(Expect("proc"));
    REGAL_ASSIGN_OR_RETURN(SrcToken name, ExpectIdent());
    Emit("Name", name.left, name.right);
    Emit("Proc_header", header_left, name.right);
    REGAL_RETURN_NOT_OK(Expect(";"));
    Offset body_right = 0;
    REGAL_ASSIGN_OR_RETURN(Offset body_left, ParseBlock(&body_right));
    Emit("Proc_body", body_left, body_right);
    REGAL_RETURN_NOT_OK(Expect(";"));
    Emit("Proc", proc_left, body_right);
    return Status::OK();
  }

  // Consumes statement tokens until the matching "end" (begin/end nest).
  // Writes the inclusive right offset of that "end".
  Status SkipStatements(Offset* right_out) {
    int depth = 1;
    while (!AtEnd()) {
      if (Peek().text == "begin") ++depth;
      if (Peek().text == "end") {
        if (--depth == 0) {
          *right_out = Peek().right;
          ++pos_;
          return Status::OK();
        }
      }
      ++pos_;
    }
    return Fail("unterminated block: missing 'end'");
  }

  const std::string& source_;
  std::vector<SrcToken> tokens_;
  size_t pos_ = 0;
  std::map<std::string, std::vector<Region>> sets_;
};

}  // namespace

std::string GenerateProgramSource(const ProgramGeneratorOptions& options) {
  return ProgramGenerator(options).Generate();
}

Result<Instance> ParseProgram(const std::string& source) {
  return ProgramParser(source).Parse();
}

}  // namespace regal
