#ifndef REGAL_DOC_DICTIONARY_H_
#define REGAL_DOC_DICTIONARY_H_

#include <string>

#include "graph/digraph.h"
#include "util/random.h"

namespace regal {

/// An OED-flavoured dictionary corpus — the PAT system's original workload
/// [Gon87: "Examples of PAT applied to the Oxford English Dictionary"].
/// Entries contain a headword, part-of-speech, and senses; senses contain a
/// definition and dated quotations with authors.
struct DictionaryGeneratorOptions {
  int entries = 40;
  int max_senses = 4;
  int max_quotes_per_sense = 3;
  int vocabulary = 120;  // Distinct definition words "term0"..
  uint64_t seed = 31;
};

/// Generates SGML markup (parse with ParseSgml):
///   dictionary > entry > {headword, pos, sense > {def, quote > {date,
///   author, qtext}}}.
std::string GenerateDictionarySource(const DictionaryGeneratorOptions& options);

/// The RIG of generated dictionaries.
Digraph DictionaryRig();

}  // namespace regal

#endif  // REGAL_DOC_DICTIONARY_H_
