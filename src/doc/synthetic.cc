#include "doc/synthetic.h"

#include <algorithm>
#include <functional>
#include <map>
#include <utility>

namespace regal {

namespace {

// Assigns offsets to a forest depth-first: a leaf takes 1 unit; an inner
// node spans its children plus one unit of padding on each side.
void LayoutNode(const NodeSpec& node, Offset* cursor,
                std::map<std::string, std::vector<Region>>* sets) {
  Offset left = (*cursor)++;
  for (const NodeSpec& child : node.children) {
    LayoutNode(child, cursor, sets);
  }
  Offset right = (*cursor)++;
  (*sets)[node.name].push_back(Region{left, right});
}

}  // namespace

Instance FromForest(const std::vector<NodeSpec>& forest) {
  std::map<std::string, std::vector<Region>> sets;
  Offset cursor = 0;
  for (const NodeSpec& root : forest) {
    LayoutNode(root, &cursor, &sets);
  }
  Instance instance;
  for (auto& [name, regions] : sets) {
    instance.SetRegionSet(name, RegionSet::FromUnsorted(std::move(regions)));
  }
  return instance;
}

Instance MakeFigure2Instance(int depth) {
  // A nested spine of `depth` B regions (B directly including B — the
  // configuration at the heart of the Theorem 5.1 proof), where a
  // deterministic pseudo-random subset of levels additionally carries a
  // direct A child (the innermost level always does). B ⊃_d A thus selects
  // exactly the B's with an A child, while B ⊃ A selects every B — and no
  // fixed-size base expression can track which levels carry the A once the
  // depth outgrows it.
  Rng rng(static_cast<uint64_t>(depth) * 0x9e37u + 17);
  NodeSpec node{"B", {NodeSpec{"A", {}}}};  // Innermost level.
  for (int level = 1; level < depth; ++level) {
    NodeSpec parent{"B", {}};
    if (rng.Chance(0.5)) parent.children.push_back(NodeSpec{"A", {}});
    parent.children.push_back(std::move(node));
    node = std::move(parent);
  }
  std::vector<NodeSpec> forest;
  forest.push_back(std::move(node));
  Instance instance = FromForest(forest);
  if (!instance.Has("A")) instance.SetRegionSet("A", RegionSet());
  if (!instance.Has("B")) instance.SetRegionSet("B", RegionSet());
  return instance;
}

Instance MakeFigure3Instance(int k) {
  std::vector<NodeSpec> forest;
  const int total = 4 * k + 1;
  for (int i = 1; i <= total; ++i) {
    NodeSpec c{"C", {}};
    c.children.push_back(NodeSpec{"A", {}});
    c.children.push_back(NodeSpec{"B", {}});
    if (i == 2 * k + 1) {
      c.children.push_back(NodeSpec{"A", {}});
    }
    forest.push_back(std::move(c));
  }
  return FromForest(forest);
}

Instance RandomLaminarInstance(Rng& rng, const RandomInstanceOptions& options) {
  // Simulate a cursor walking left to right, maintaining the stack of open
  // regions; each step either opens a child region or closes the innermost
  // open one. This yields a laminar family with all-distinct regions by
  // construction.
  std::map<std::string, std::vector<Region>> sets;
  struct Open {
    Offset left;
    std::string name;
  };
  std::vector<Open> open;
  Offset cursor = 0;
  int created = 0;
  std::vector<std::string> name_pool = options.names;
  if (name_pool.empty()) {
    for (int i = 0; i < std::max(1, options.max_names); ++i) {
      name_pool.push_back("R" + std::to_string(i));
    }
  }
  auto random_name = [&] { return name_pool[rng.Below(name_pool.size())]; };
  while (created < options.num_regions || !open.empty()) {
    const bool may_open =
        created < options.num_regions &&
        static_cast<int>(open.size()) < std::max(1, options.max_depth);
    if (may_open && (open.empty() || !rng.Chance(options.sibling_bias))) {
      open.push_back(Open{cursor++, random_name()});
      ++created;
    } else if (!open.empty()) {
      sets[open.back().name].push_back(Region{open.back().left, cursor++});
      open.pop_back();
    }
  }
  Instance instance;
  for (const std::string& name : name_pool) {
    auto it = sets.find(name);
    instance.SetRegionSet(name, it == sets.end()
                                    ? RegionSet()
                                    : RegionSet::FromUnsorted(it->second));
  }
  return instance;
}

Instance RandomInstanceForRig(Rng& rng, const Digraph& rig, int num_regions,
                              int max_depth,
                              const std::vector<std::string>& root_labels) {
  std::vector<std::string> roots = root_labels;
  if (roots.empty()) roots = rig.Labels();
  std::vector<NodeSpec> forest;
  int budget = num_regions;

  // Recursive expansion along RIG edges.
  std::function<NodeSpec(Digraph::NodeId, int)> expand =
      [&](Digraph::NodeId node, int depth) {
        NodeSpec spec{rig.Label(node), {}};
        --budget;
        if (depth >= max_depth || budget <= 0) return spec;
        const auto& out = rig.OutNeighbors(node);
        if (out.empty()) return spec;
        // 0..3 children, each a random out-neighbor.
        int num_children = static_cast<int>(rng.Below(4));
        for (int i = 0; i < num_children && budget > 0; ++i) {
          Digraph::NodeId child = out[rng.Below(out.size())];
          spec.children.push_back(expand(child, depth + 1));
        }
        return spec;
      };

  while (budget > 0 && !roots.empty()) {
    const std::string& label = roots[rng.Below(roots.size())];
    auto id = rig.FindNode(label);
    if (!id.ok()) break;
    forest.push_back(expand(*id, 1));
  }
  Instance instance = FromForest(forest);
  // Ensure every RIG name is defined (possibly empty) so expressions over
  // the schema always evaluate.
  for (const std::string& label : rig.Labels()) {
    if (!instance.Has(label)) instance.SetRegionSet(label, RegionSet());
  }
  return instance;
}

void AssignRandomPatterns(Instance* instance, Rng& rng,
                          const std::vector<Pattern>& patterns, double prob) {
  RegionSet all = instance->AllRegions();
  for (const Pattern& p : patterns) {
    std::vector<Region> where;
    for (const Region& r : all) {
      if (rng.Chance(prob)) where.push_back(r);
    }
    instance->SetSyntheticPattern(p,
                                  RegionSet::FromSortedUnique(std::move(where)));
  }
}

}  // namespace regal
