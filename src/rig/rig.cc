#include "rig/rig.h"

#include "graph/algorithms.h"

namespace regal {

namespace {

Status CheckEdgesCovered(const Digraph& derived, const Digraph& schema,
                         const char* relation) {
  for (Digraph::NodeId v = 0; v < derived.NumNodes(); ++v) {
    for (Digraph::NodeId w : derived.OutNeighbors(v)) {
      auto sv = schema.FindNode(derived.Label(v));
      if (!sv.ok()) {
        return Status::FailedPrecondition("region name '" + derived.Label(v) +
                                          "' is not a schema node");
      }
      auto sw = schema.FindNode(derived.Label(w));
      if (!sw.ok()) {
        return Status::FailedPrecondition("region name '" + derived.Label(w) +
                                          "' is not a schema node");
      }
      if (!schema.HasEdge(*sv, *sw)) {
        return Status::FailedPrecondition(
            "instance violates the schema: " + derived.Label(v) + " " +
            relation + " " + derived.Label(w) + " has no edge");
      }
    }
  }
  return Status::OK();
}

}  // namespace

Status InstanceSatisfiesRig(const Instance& instance, const Digraph& rig) {
  for (const std::string& name : instance.names()) {
    auto set = instance.Get(name);
    if (set.ok() && !(*set)->empty() && !rig.HasNode(name)) {
      return Status::FailedPrecondition("region name '" + name +
                                        "' is not a RIG node");
    }
  }
  return CheckEdgesCovered(instance.DeriveRig(), rig, "directly includes");
}

Status InstanceSatisfiesRog(const Instance& instance, const Digraph& rog) {
  return CheckEdgesCovered(instance.DeriveRog(), rog, "directly precedes");
}

Result<int> RigNestingBound(const Digraph& rig) {
  REGAL_ASSIGN_OR_RETURN(int longest, LongestPathLength(rig));
  return longest + 1;
}

Result<int> RogWidthBound(const Digraph& rog) {
  REGAL_ASSIGN_OR_RETURN(int longest, LongestPathLength(rog));
  return longest + 1;
}

std::vector<std::string> NamesNestableInside(const Digraph& rig,
                                             const std::string& outer) {
  std::vector<std::string> out;
  auto id = rig.FindNode(outer);
  if (!id.ok()) return out;
  std::vector<bool> seen = Reachable(rig, *id);
  for (Digraph::NodeId v = 0; v < rig.NumNodes(); ++v) {
    if (!seen[static_cast<size_t>(v)]) continue;
    if (v == *id) {
      // The outer name itself counts only if it can self-nest (a cycle
      // back to it).
      bool cyclic = false;
      for (Digraph::NodeId w : rig.OutNeighbors(v)) {
        if (Reachable(rig, w)[static_cast<size_t>(v)]) {
          cyclic = true;
          break;
        }
      }
      if (!cyclic) continue;
    }
    out.push_back(rig.Label(v));
  }
  return out;
}

}  // namespace regal
