#ifndef REGAL_RIG_RIG_H_
#define REGAL_RIG_RIG_H_

#include <string>
#include <vector>

#include "core/instance.h"
#include "graph/digraph.h"
#include "util/status.h"

namespace regal {

/// Helpers around region inclusion graphs (Definition 2.4). A RIG is just a
/// Digraph whose node labels are region names; these functions give it the
/// schema semantics of Section 2.2.

/// OK iff `instance` satisfies `rig`: for every direct inclusion r_i ⊃_d r_j
/// in the instance, (name(r_i), name(r_j)) is a RIG edge, and every
/// instance name is a RIG node. The error message pins the first violation.
Status InstanceSatisfiesRig(const Instance& instance, const Digraph& rig);

/// OK iff `instance` satisfies `rog` (the order analogue): every direct
/// precedence pair is a ROG edge.
Status InstanceSatisfiesRog(const Instance& instance, const Digraph& rog);

/// For an acyclic RIG: an upper bound on the region nesting depth of any
/// satisfying instance — the longest path length + 1 ("files with an
/// acyclic RIG have nesting depth bounded by the length of the longest path
/// in the RIG", Section 5.1). Error if the RIG has a cycle (depth is then
/// unbounded).
Result<int> RigNestingBound(const Digraph& rig);

/// For an acyclic ROG: an upper bound on the number of pairwise
/// non-overlapping regions in any satisfying instance (Prop 5.4's bound).
Result<int> RogWidthBound(const Digraph& rog);

/// Names whose regions can transitively appear inside an `outer` region
/// according to the RIG (outer excluded unless reachable via a cycle).
std::vector<std::string> NamesNestableInside(const Digraph& rig,
                                             const std::string& outer);

}  // namespace regal

#endif  // REGAL_RIG_RIG_H_
