#include "rig/grammar.h"

#include <set>

namespace regal {

void Grammar::AddRule(const std::string& lhs, std::vector<std::string> rhs) {
  if (rules_.count(lhs) == 0) order_.push_back(lhs);
  rules_[lhs].push_back(std::move(rhs));
}

std::vector<std::string> Grammar::Nonterminals() const { return order_; }

Digraph Grammar::DeriveRig() const {
  Digraph g;
  for (const std::string& name : order_) g.AddNode(name);
  for (const auto& [lhs, productions] : rules_) {
    for (const auto& rhs : productions) {
      for (const std::string& symbol : rhs) {
        if (IsNonterminal(symbol)) g.AddEdge(lhs, symbol);
      }
    }
  }
  return g;
}

std::vector<std::string> Grammar::EdgeClosure(const std::string& name,
                                              bool first) const {
  std::set<std::string> seen;
  std::vector<std::string> stack{name};
  std::vector<std::string> out;
  while (!stack.empty()) {
    std::string current = stack.back();
    stack.pop_back();
    if (!seen.insert(current).second) continue;
    out.push_back(current);
    auto it = rules_.find(current);
    if (it == rules_.end()) continue;
    for (const auto& rhs : it->second) {
      // The first/last *nonterminal* of the production (terminals produce
      // no regions and are transparent for precedence).
      if (first) {
        for (const std::string& symbol : rhs) {
          if (IsNonterminal(symbol)) {
            stack.push_back(symbol);
            break;
          }
        }
      } else {
        for (auto rit = rhs.rbegin(); rit != rhs.rend(); ++rit) {
          if (IsNonterminal(*rit)) {
            stack.push_back(*rit);
            break;
          }
        }
      }
    }
  }
  return out;
}

Digraph Grammar::DeriveRog() const {
  Digraph g;
  for (const std::string& name : order_) g.AddNode(name);
  for (const auto& [lhs, productions] : rules_) {
    (void)lhs;
    for (const auto& rhs : productions) {
      // Every ordered pair of nonterminals (u before v) in one production
      // with only terminals between them contributes Last*(u) x First*(v).
      std::string prev;
      for (const std::string& symbol : rhs) {
        if (!IsNonterminal(symbol)) continue;
        if (!prev.empty()) {
          for (const std::string& x : EdgeClosure(prev, /*first=*/false)) {
            for (const std::string& y : EdgeClosure(symbol, /*first=*/true)) {
              g.AddEdge(x, y);
            }
          }
        }
        prev = symbol;
      }
    }
  }
  return g;
}

}  // namespace regal
