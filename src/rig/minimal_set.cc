#include "rig/minimal_set.h"

#include <algorithm>
#include <functional>

#include "graph/algorithms.h"
#include "graph/maxflow.h"

namespace regal {

namespace {

// Reachability from `from` that (a) never expands through blocked nodes,
// and (b) skips the direct edge from -> to (a directly-included region is a
// legitimate witness; only paths with interior names need hitting).
bool ReachesThroughInterior(const Digraph& g, Digraph::NodeId from,
                            Digraph::NodeId to,
                            const std::vector<bool>& blocked) {
  // Walk semantics: a chain of regions named from -> n1 -> ... -> to where
  // every ni (including repeat occurrences of the endpoint names) is an
  // *interior* occurrence. The single-edge walk from -> to is exempt (a
  // direct inclusion is a legitimate witness). True iff some walk of >= 2
  // edges reaches `to` with no blocked interior occurrence.
  std::vector<bool> seen(static_cast<size_t>(g.NumNodes()), false);
  std::vector<Digraph::NodeId> stack;
  // Step-1 occurrences: every out-neighbor of `from` — including a
  // `to`-named one, which may continue as an interior occurrence (only the
  // immediate arrival is exempt).
  for (Digraph::NodeId w : g.OutNeighbors(from)) {
    if (!seen[static_cast<size_t>(w)]) {
      seen[static_cast<size_t>(w)] = true;
      stack.push_back(w);
    }
  }
  while (!stack.empty()) {
    Digraph::NodeId v = stack.back();
    stack.pop_back();
    if (blocked[static_cast<size_t>(v)]) continue;  // Interior hit.
    for (Digraph::NodeId w : g.OutNeighbors(v)) {
      if (w == to) return true;  // Arrival at step >= 2.
      if (!seen[static_cast<size_t>(w)]) {
        seen[static_cast<size_t>(w)] = true;
        stack.push_back(w);
      }
    }
  }
  return false;
}

std::vector<bool> MarkNames(const Digraph& rig,
                            const std::vector<std::string>& names) {
  std::vector<bool> marked(static_cast<size_t>(rig.NumNodes()), false);
  for (const std::string& name : names) {
    auto id = rig.FindNode(name);
    if (id.ok()) marked[static_cast<size_t>(*id)] = true;
  }
  return marked;
}

}  // namespace

bool IsValidSeparatorSet(const Digraph& rig,
                         const std::vector<std::string>& chain,
                         const std::vector<std::string>& candidate) {
  // Note: the *source occurrence* of chain[i] and the *first arrival* at
  // chain[i+1] are path endpoints and never count as hits, but interior
  // occurrences of the very same names do (e.g. the middle P of
  // P -> P -> M can be hit by putting P into the set). The DFS below gets
  // this right because the source's out-edges are always expanded and the
  // target check precedes the blocked check.
  std::vector<bool> blocked = MarkNames(rig, candidate);
  for (size_t i = 0; i + 1 < chain.size(); ++i) {
    auto a = rig.FindNode(chain[i]);
    auto b = rig.FindNode(chain[i + 1]);
    if (!a.ok() || !b.ok()) continue;  // Absent names have no paths.
    if (ReachesThroughInterior(rig, *a, *b, blocked)) return false;
  }
  return true;
}

Result<std::vector<std::string>> MinimalSetExact(
    const Digraph& rig, const std::vector<std::string>& chain, int max_k) {
  if (chain.size() < 2) {
    return Status::InvalidArgument("chain needs at least two names");
  }
  const int n = rig.NumNodes();
  std::vector<std::string> labels = rig.Labels();
  int limit = (max_k >= 0) ? std::min(max_k, n) : n;

  std::vector<std::string> current;
  // Combinations of size k in lexicographic index order.
  std::function<bool(int, int)> search = [&](int start, int remaining) {
    if (remaining == 0) return IsValidSeparatorSet(rig, chain, current);
    for (int i = start; i <= n - remaining; ++i) {
      current.push_back(labels[static_cast<size_t>(i)]);
      if (search(i + 1, remaining - 1)) return true;
      current.pop_back();
    }
    return false;
  };

  for (int k = 0; k <= limit; ++k) {
    current.clear();
    if (search(0, k)) return current;
  }
  return Status::ResourceExhausted(
      "no separator set of size <= " + std::to_string(limit) + " exists");
}

Result<std::vector<std::string>> MinimalSetSingleOp(const Digraph& rig,
                                                    const std::string& from,
                                                    const std::string& to) {
  REGAL_ASSIGN_OR_RETURN(Digraph::NodeId a, rig.FindNode(from));
  REGAL_ASSIGN_OR_RETURN(Digraph::NodeId b, rig.FindNode(to));
  // Occurrence graph: the *source occurrence* of `from` and the *first
  // arrival* at `to` get their own nodes (they are endpoints and cannot be
  // hit), while the original nodes keep playing interior roles — a path
  // P -> P -> M must be cuttable at the interior P. The direct edge
  // from -> to contributes no src -> sink edge (single-hop paths are
  // exempt), but still feeds interior occurrences.
  Digraph g;
  for (const std::string& label : rig.Labels()) g.AddNode(label);
  Digraph::NodeId src = g.AddNode("__source_occurrence__");
  Digraph::NodeId sink = g.AddNode("__sink_occurrence__");
  for (Digraph::NodeId v = 0; v < rig.NumNodes(); ++v) {
    for (Digraph::NodeId w : rig.OutNeighbors(v)) {
      g.AddEdge(v, w);
      if (v == a && w != b) g.AddEdge(src, w);
      if (w == b && v != a) g.AddEdge(v, sink);
      if (v == a && w == b) {
        // The edge may still start or end an interior-bearing path.
        g.AddEdge(v, sink);  // ... -> from(interior) -> to.
        g.AddEdge(src, w);   // src -> to(interior) -> ... (to can recur).
      }
    }
  }
  if (!Reachable(g, src)[static_cast<size_t>(sink)]) {
    return std::vector<std::string>{};  // Nothing to separate.
  }
  REGAL_ASSIGN_OR_RETURN(std::vector<Digraph::NodeId> cut,
                         MinVertexCut(g, src, sink));
  std::vector<std::string> out;
  for (Digraph::NodeId v : cut) out.push_back(g.Label(v));
  return out;
}

Result<std::vector<std::string>> MinimalSetPairwiseCuts(
    const Digraph& rig, const std::vector<std::string>& chain) {
  if (chain.size() < 2) {
    return Status::InvalidArgument("chain needs at least two names");
  }
  std::vector<std::string> out;
  for (size_t i = 0; i + 1 < chain.size(); ++i) {
    REGAL_ASSIGN_OR_RETURN(std::vector<std::string> cut,
                           MinimalSetSingleOp(rig, chain[i], chain[i + 1]));
    for (std::string& name : cut) {
      if (std::find(out.begin(), out.end(), name) == out.end()) {
        out.push_back(std::move(name));
      }
    }
  }
  return out;
}

std::pair<Digraph, std::vector<std::string>> VertexCoverToMinimalSet(
    int num_vertices, const std::vector<std::pair<int, int>>& edges) {
  Digraph rig;
  for (int v = 0; v < num_vertices; ++v) rig.AddNode("v" + std::to_string(v));
  std::vector<std::string> chain;
  for (size_t i = 0; i < edges.size(); ++i) {
    std::string a = "A" + std::to_string(i);
    std::string b = "B" + std::to_string(i);
    // The endpoints are wired in SERIES: every walk A_i ~> B_i passes
    // through both u and w, so hitting it needs u OR w in the set —
    // exactly the vertex cover constraint. (Parallel paths would demand
    // both.) Extra vertex-vertex edges from other pairs only lengthen
    // walks, which then still contain u and w. The interleaving pairs
    // (B_i, A_{i+1}) are vacuous since B_i is a sink.
    rig.AddEdge(a, "v" + std::to_string(edges[i].first));
    rig.AddEdge("v" + std::to_string(edges[i].first),
                "v" + std::to_string(edges[i].second));
    rig.AddEdge("v" + std::to_string(edges[i].second), b);
    chain.push_back(a);
    chain.push_back(b);
  }
  return {std::move(rig), std::move(chain)};
}

int MinVertexCoverSize(int num_vertices,
                       const std::vector<std::pair<int, int>>& edges) {
  for (int k = 0; k <= num_vertices; ++k) {
    // All subsets of size k.
    std::vector<int> pick;
    std::function<bool(int, int)> search = [&](int start, int remaining) {
      if (remaining == 0) {
        for (const auto& [u, w] : edges) {
          bool covered = false;
          for (int v : pick) {
            if (v == u || v == w) {
              covered = true;
              break;
            }
          }
          if (!covered) return false;
        }
        return true;
      }
      for (int i = start; i <= num_vertices - remaining; ++i) {
        pick.push_back(i);
        if (search(i + 1, remaining - 1)) return true;
        pick.pop_back();
      }
      return false;
    };
    if (search(0, k)) return k;
  }
  return num_vertices;
}

}  // namespace regal
