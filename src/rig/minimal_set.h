#ifndef REGAL_RIG_MINIMAL_SET_H_
#define REGAL_RIG_MINIMAL_SET_H_

#include <string>
#include <utility>
#include <vector>

#include "graph/digraph.h"
#include "util/status.h"

namespace regal {

/// The minimal-set problem of Section 6 / Prop 6.1: given a RIG G and a
/// direct-inclusion chain R_1 ∘ R_2 ∘ ... ∘ R_n, find a smallest subset I'
/// of region names containing at least one name on every RIG path from R_i
/// to R_{i+1} (endpoints excluded), for all i. Such an I' can replace the
/// full ∪_T T in the Section 6 loop program's `All` set.
///
/// The decision version is NP-complete (Prop 6.1, by reduction from vertex
/// cover); the single-operation case (n = 2) is polynomial via minimum
/// vertex cut.

/// True iff `candidate` hits every path between all consecutive chain
/// pairs. Chain names themselves are never required to be in the set, and
/// endpoints do not count as hits.
bool IsValidSeparatorSet(const Digraph& rig,
                         const std::vector<std::string>& chain,
                         const std::vector<std::string>& candidate);

/// Exact minimum separator set, by exhaustive search over subsets in
/// increasing size (exponential; intended for RIGs with <= ~25 names).
/// `max_k`, if >= 0, bounds the search and yields ResourceExhausted when no
/// set of size <= max_k exists. Candidate names are the non-chain-endpoint
/// nodes of the RIG.
Result<std::vector<std::string>> MinimalSetExact(
    const Digraph& rig, const std::vector<std::string>& chain, int max_k = -1);

/// Polynomial special case (n == 2): minimum vertex cut between the two
/// names ("using a variant of the min-cut problem"). Error if the RIG has a
/// direct edge R1 -> R2 *and* other paths needing separation — in that case
/// a direct inclusion cannot be blocked and the result is the cut of the
/// remaining paths; with only the direct edge the empty set is returned.
Result<std::vector<std::string>> MinimalSetSingleOp(const Digraph& rig,
                                                    const std::string& from,
                                                    const std::string& to);

/// Polynomial heuristic for general chains: union of per-pair minimum
/// vertex cuts. Always a valid separator set; at most (n-1) times the
/// optimum.
Result<std::vector<std::string>> MinimalSetPairwiseCuts(
    const Digraph& rig, const std::vector<std::string>& chain);

/// The NP-hardness reduction of Prop 6.1, made executable: builds a RIG and
/// chain whose minimum separator sets are exactly the vertex covers of the
/// given undirected graph. Vertices are named "v0".."v{n-1}"; the chain
/// visits auxiliary names "X0".."X{m}" with the two endpoints of edge i as
/// the parallel paths between X_{i-1} and X_i.
std::pair<Digraph, std::vector<std::string>> VertexCoverToMinimalSet(
    int num_vertices, const std::vector<std::pair<int, int>>& edges);

/// Brute-force minimum vertex cover size (test oracle for the reduction).
int MinVertexCoverSize(int num_vertices,
                       const std::vector<std::pair<int, int>>& edges);

}  // namespace regal

#endif  // REGAL_RIG_MINIMAL_SET_H_
