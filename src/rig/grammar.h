#ifndef REGAL_RIG_GRAMMAR_H_
#define REGAL_RIG_GRAMMAR_H_

#include <map>
#include <string>
#include <vector>

#include "graph/digraph.h"
#include "util/status.h"

namespace regal {

/// A context-free grammar describing a file format, as in Section 2.2:
/// "if the structure of the file follows some grammar G, then the RIG can
/// be automatically derived from G". Nonterminals are the region names;
/// symbols on a right-hand side that never appear on a left-hand side are
/// terminals (they produce raw text, not regions).
class Grammar {
 public:
  /// Adds the production `lhs -> rhs`. Empty rhs (epsilon) is allowed.
  void AddRule(const std::string& lhs, std::vector<std::string> rhs);

  /// All nonterminals, in first-mention order.
  std::vector<std::string> Nonterminals() const;

  bool IsNonterminal(const std::string& symbol) const {
    return rules_.count(symbol) > 0;
  }

  const std::map<std::string, std::vector<std::vector<std::string>>>& rules()
      const {
    return rules_;
  }

  /// The RIG derived from this grammar: nodes are the nonterminals, and
  /// (A, B) is an edge iff B appears on the right-hand side of a rule for A
  /// (Section 2.2).
  Digraph DeriveRig() const;

  /// The ROG derived from this grammar: (X, Y) is an edge iff a region of X
  /// can directly precede a region of Y. Computed from right-hand-side
  /// adjacency closed under "last descendant" / "first descendant": if
  /// A B are adjacent nonterminals in some rule, then every name that can
  /// end an A-derivation directly precedes every name that can start a
  /// B-derivation. Terminals between nonterminals are transparent (they
  /// produce no regions). Assumes non-nullable nonterminals.
  Digraph DeriveRog() const;

 private:
  /// Transitive "can be the first/last region-producing child" closure.
  std::vector<std::string> EdgeClosure(const std::string& name,
                                       bool first) const;

  std::map<std::string, std::vector<std::vector<std::string>>> rules_;
  std::vector<std::string> order_;  // First-mention order of nonterminals.
};

}  // namespace regal

#endif  // REGAL_RIG_GRAMMAR_H_
