#ifndef REGAL_FMFT_TRANSLATE_H_
#define REGAL_FMFT_TRANSLATE_H_

#include <string>
#include <vector>

#include "core/expr.h"
#include "fmft/formula.h"
#include "util/status.h"

namespace regal {

/// Proposition 3.3, constructive direction: translates a base region
/// algebra expression into an equivalent restricted FMFT formula — for
/// every instance I, model t representing I, and word w in t,
/// region(w) ∈ e(I) iff w ∈ φ(t). Errors on extended operators (⊃_d, ⊂_d,
/// BI), which Theorem 5.1/5.3 prove have no restricted-formula equivalent.
Result<FormulaPtr> AlgebraToFormula(const ExprPtr& expr);

/// The converse direction: translates a restricted formula back into a
/// base algebra expression. A standalone pattern predicate Q_{n+j}(x)
/// becomes σ_p over the union of all region names, so the instance's name
/// list is required.
Result<ExprPtr> FormulaToAlgebra(const FormulaPtr& formula,
                                 const std::vector<std::string>& region_names);

}  // namespace regal

#endif  // REGAL_FMFT_TRANSLATE_H_
