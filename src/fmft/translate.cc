#include "fmft/translate.h"

namespace regal {

Result<FormulaPtr> AlgebraToFormula(const ExprPtr& expr) {
  switch (expr->kind()) {
    case OpKind::kName:
      return RestrictedFormula::Pred(expr->name());
    case OpKind::kSelect: {
      REGAL_ASSIGN_OR_RETURN(FormulaPtr child,
                             AlgebraToFormula(expr->child(0)));
      return RestrictedFormula::And(
          std::move(child),
          RestrictedFormula::Pred(expr->pattern().CacheKey()));
    }
    case OpKind::kUnion:
    case OpKind::kIntersect:
    case OpKind::kDifference:
    case OpKind::kIncluding:
    case OpKind::kIncluded:
    case OpKind::kPrecedes:
    case OpKind::kFollows: {
      REGAL_ASSIGN_OR_RETURN(FormulaPtr a, AlgebraToFormula(expr->child(0)));
      REGAL_ASSIGN_OR_RETURN(FormulaPtr b, AlgebraToFormula(expr->child(1)));
      switch (expr->kind()) {
        case OpKind::kUnion:
          return RestrictedFormula::Or(std::move(a), std::move(b));
        case OpKind::kIntersect:
          return RestrictedFormula::And(std::move(a), std::move(b));
        case OpKind::kDifference:
          return RestrictedFormula::AndNot(std::move(a), std::move(b));
        case OpKind::kIncluding:
          return RestrictedFormula::Exists(FormulaKind::kExistsXsupY,
                                           std::move(a), std::move(b));
        case OpKind::kIncluded:
          return RestrictedFormula::Exists(FormulaKind::kExistsYsupX,
                                           std::move(a), std::move(b));
        case OpKind::kPrecedes:
          return RestrictedFormula::Exists(FormulaKind::kExistsXbeforeY,
                                           std::move(a), std::move(b));
        case OpKind::kFollows:
          return RestrictedFormula::Exists(FormulaKind::kExistsYbeforeX,
                                           std::move(a), std::move(b));
        default:
          break;
      }
      return Status::Internal("unreachable");
    }
    default:
      return Status::InvalidArgument(
          "operator '" + std::string(OpKindToken(expr->kind())) +
          "' has no restricted-formula equivalent (Theorems 5.1/5.3)");
  }
}

namespace {

bool IsPatternPredicate(const std::string& name) {
  return name.size() >= 2 && name[1] == ':' &&
         (name[0] == 's' || name[0] == 'i');
}

}  // namespace

Result<ExprPtr> FormulaToAlgebra(const FormulaPtr& formula,
                                 const std::vector<std::string>& region_names) {
  switch (formula->kind()) {
    case FormulaKind::kPred: {
      const std::string& name = formula->predicate();
      if (!IsPatternPredicate(name)) return Expr::Name(name);
      // Q_{n+j}(x): the regions (of any name) for which W(r, p_j) holds.
      if (region_names.empty()) {
        return Status::InvalidArgument(
            "pattern predicate needs at least one region name in scope");
      }
      REGAL_ASSIGN_OR_RETURN(
          Pattern p,
          Pattern::Parse(name.substr(2), /*case_insensitive=*/name[0] == 'i'));
      ExprPtr all = Expr::Name(region_names[0]);
      for (size_t i = 1; i < region_names.size(); ++i) {
        all = Expr::Union(std::move(all), Expr::Name(region_names[i]));
      }
      return Expr::Select(std::move(p), std::move(all));
    }
    default: {
      REGAL_ASSIGN_OR_RETURN(ExprPtr a,
                             FormulaToAlgebra(formula->left(), region_names));
      REGAL_ASSIGN_OR_RETURN(ExprPtr b,
                             FormulaToAlgebra(formula->right(), region_names));
      switch (formula->kind()) {
        case FormulaKind::kOr:
          return Expr::Union(std::move(a), std::move(b));
        case FormulaKind::kAnd:
          return Expr::Intersect(std::move(a), std::move(b));
        case FormulaKind::kAndNot:
          return Expr::Difference(std::move(a), std::move(b));
        case FormulaKind::kExistsXsupY:
          return Expr::Including(std::move(a), std::move(b));
        case FormulaKind::kExistsYsupX:
          return Expr::Included(std::move(a), std::move(b));
        case FormulaKind::kExistsXbeforeY:
          return Expr::Precedes(std::move(a), std::move(b));
        case FormulaKind::kExistsYbeforeX:
          return Expr::Follows(std::move(a), std::move(b));
        default:
          return Status::Internal("unreachable formula kind");
      }
    }
  }
}

}  // namespace regal
