#include "fmft/formula.h"

#include <algorithm>

namespace regal {

int RestrictedFormula::Size() const {
  if (kind_ == FormulaKind::kPred) return 0;
  return 1 + children_[0]->Size() + children_[1]->Size();
}

std::vector<size_t> RestrictedFormula::Evaluate(const FmftModel& model) const {
  const size_t n = model.NumWords();
  std::vector<bool> in(n, false);
  switch (kind_) {
    case FormulaKind::kPred: {
      int q = -1;
      for (size_t i = 0; i < model.predicate_names().size(); ++i) {
        if (model.predicate_names()[i] == predicate_) {
          q = static_cast<int>(i);
          break;
        }
      }
      if (q >= 0) {
        for (size_t w = 0; w < n; ++w) {
          in[w] = model.InPredicate(w, static_cast<size_t>(q));
        }
      }
      break;
    }
    case FormulaKind::kOr:
    case FormulaKind::kAnd:
    case FormulaKind::kAndNot: {
      std::vector<size_t> a = children_[0]->Evaluate(model);
      std::vector<size_t> b = children_[1]->Evaluate(model);
      std::vector<bool> in_b(n, false);
      for (size_t w : b) in_b[w] = true;
      if (kind_ == FormulaKind::kOr) {
        for (size_t w : a) in[w] = true;
        for (size_t w : b) in[w] = true;
      } else if (kind_ == FormulaKind::kAnd) {
        for (size_t w : a) in[w] = in_b[w];
      } else {
        for (size_t w : a) in[w] = !in_b[w];
      }
      break;
    }
    default: {
      std::vector<size_t> a = children_[0]->Evaluate(model);
      std::vector<size_t> b = children_[1]->Evaluate(model);
      for (size_t x : a) {
        for (size_t y : b) {
          bool related = false;
          switch (kind_) {
            case FormulaKind::kExistsXsupY:
              related = model.ProperPrefix(x, y);
              break;
            case FormulaKind::kExistsYsupX:
              related = model.ProperPrefix(y, x);
              break;
            case FormulaKind::kExistsXbeforeY:
              related = model.LexBefore(x, y);
              break;
            case FormulaKind::kExistsYbeforeX:
              related = model.LexBefore(y, x);
              break;
            default:
              break;
          }
          if (related) {
            in[x] = true;
            break;
          }
        }
      }
      break;
    }
  }
  std::vector<size_t> out;
  for (size_t w = 0; w < n; ++w) {
    if (in[w]) out.push_back(w);
  }
  return out;
}

std::string RestrictedFormula::ToStringImpl(const std::string& var,
                                            int depth) const {
  switch (kind_) {
    case FormulaKind::kPred:
      return "Q_" + predicate_ + "(" + var + ")";
    case FormulaKind::kOr:
      return "(" + children_[0]->ToStringImpl(var, depth) + " v " +
             children_[1]->ToStringImpl(var, depth) + ")";
    case FormulaKind::kAnd:
      return "(" + children_[0]->ToStringImpl(var, depth) + " ^ " +
             children_[1]->ToStringImpl(var, depth) + ")";
    case FormulaKind::kAndNot:
      return "(" + children_[0]->ToStringImpl(var, depth) + " ^ ~" +
             children_[1]->ToStringImpl(var, depth) + ")";
    default: {
      std::string y = "y" + std::to_string(depth);
      const char* rel = "";
      bool x_first = true;
      switch (kind_) {
        case FormulaKind::kExistsXsupY:
          rel = " sup ";
          break;
        case FormulaKind::kExistsYsupX:
          rel = " sup ";
          x_first = false;
          break;
        case FormulaKind::kExistsXbeforeY:
          rel = " < ";
          break;
        case FormulaKind::kExistsYbeforeX:
          rel = " < ";
          x_first = false;
          break;
        default:
          break;
      }
      std::string relation = x_first ? (var + rel + y) : (y + rel + var);
      return "(E " + y + ")(" + children_[0]->ToStringImpl(var, depth + 1) +
             " ^ " + children_[1]->ToStringImpl(y, depth + 1) + " ^ " +
             relation + ")";
    }
  }
}

std::string RestrictedFormula::ToString() const { return ToStringImpl("x", 0); }

FormulaPtr RestrictedFormula::Pred(std::string name) {
  return FormulaPtr(
      new RestrictedFormula(FormulaKind::kPred, std::move(name), {}));
}

FormulaPtr RestrictedFormula::Or(FormulaPtr a, FormulaPtr b) {
  return FormulaPtr(new RestrictedFormula(FormulaKind::kOr, "",
                                          {std::move(a), std::move(b)}));
}

FormulaPtr RestrictedFormula::And(FormulaPtr a, FormulaPtr b) {
  return FormulaPtr(new RestrictedFormula(FormulaKind::kAnd, "",
                                          {std::move(a), std::move(b)}));
}

FormulaPtr RestrictedFormula::AndNot(FormulaPtr a, FormulaPtr b) {
  return FormulaPtr(new RestrictedFormula(FormulaKind::kAndNot, "",
                                          {std::move(a), std::move(b)}));
}

FormulaPtr RestrictedFormula::Exists(FormulaKind kind, FormulaPtr a,
                                     FormulaPtr b) {
  return FormulaPtr(
      new RestrictedFormula(kind, "", {std::move(a), std::move(b)}));
}

}  // namespace regal
