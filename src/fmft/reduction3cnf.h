#ifndef REGAL_FMFT_REDUCTION3CNF_H_
#define REGAL_FMFT_REDUCTION3CNF_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/expr.h"
#include "core/instance.h"
#include "logic/cnf.h"

namespace regal {

/// Theorem 3.5 ("emptiness testing in the region algebra is Co-NP-Hard"),
/// made executable: a polynomial reduction from 3-CNF (un)satisfiability to
/// (non-)emptiness of a region algebra expression.
///
/// For a CNF φ over x_1..x_n, the region index has names
/// A, T_1..T_n, F_1..F_n, and the expression is
///
///   e_φ = A ∩ ⋂_i [((A ⊃ T_i) ∪ (A ⊃ F_i)) − ((A ⊃ T_i) ∩ (A ⊃ F_i))]
///           ∩ ⋂_clauses (∪_{literals ℓ} A ⊃ lit(ℓ))
///
/// An A region containing exactly one of T_i/F_i per variable encodes a
/// truth assignment, the middle conjunct forces exactly-one, and the last
/// forces every clause satisfied. Hence e_φ(I) ≠ ∅ for some I iff φ is
/// satisfiable — over *all* instances, not only assignment-shaped ones.
struct CnfEmptinessReduction {
  ExprPtr expr;
  std::vector<std::string> names;  // A, T1..Tn, F1..Fn.
};

CnfEmptinessReduction CnfToEmptinessExpr(const Cnf& cnf);

/// The canonical witness instance for a truth assignment: one A region
/// containing a T_i or F_i leaf per variable.
Instance AssignmentToInstance(const Cnf& cnf,
                              const std::vector<bool>& assignment);

/// Decides emptiness of e_φ by enumerating the 2^n assignment-shaped
/// instances (complete for this family: a witness exists iff an
/// assignment-shaped witness exists). Returns true iff EMPTY. `checked`
/// (optional) counts evaluated instances — the exponential cost the
/// Co-NP-hardness predicts.
bool EmptinessByAssignmentSearch(const Cnf& cnf, const ExprPtr& expr,
                                 int64_t* checked = nullptr);

}  // namespace regal

#endif  // REGAL_FMFT_REDUCTION3CNF_H_
