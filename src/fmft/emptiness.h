#ifndef REGAL_FMFT_EMPTINESS_H_
#define REGAL_FMFT_EMPTINESS_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "core/expr.h"
#include "core/instance.h"
#include "graph/digraph.h"
#include "safety/context.h"
#include "util/status.h"

namespace regal {

/// Bounds for the emptiness / equivalence search. Exact emptiness testing
/// is decidable (Theorem 3.4 via Rabin) but Co-NP-Hard already for the
/// region algebra (Theorem 3.5), and the known decision procedures are
/// non-elementary; this checker instead enumerates *all* canonical
/// instances within (node, depth) bounds — exhaustive within bounds — and
/// augments them with randomized larger instances. Section 4's theorems
/// justify small bounds: a non-empty expression e has a witness of nesting
/// <= 2|e| (Theorem 4.1) whose width is controlled by the number of order
/// operators (Theorem 4.4).
struct EmptinessOptions {
  int max_nodes = 6;            // Exhaustive bound on instance size.
  int max_depth = 4;            // Exhaustive bound on nesting depth.
  int64_t eval_budget = 500000; // Max instance evaluations before giving up
                                // on exhaustiveness.
  int random_samples = 200;     // Extra randomized larger instances.
  int random_nodes = 24;
  uint64_t seed = 1;
  /// Optional governance state (deadline / cancellation), polled once per
  /// probed instance: the search stops with the violated limit's Status
  /// instead of running its full eval_budget. eval_budget already bounds
  /// total work (Thm 3.4's decidability is non-elementary, hence budgets);
  /// the context adds wall-clock and caller-initiated bounds on top.
  const safety::QueryContext* context = nullptr;
};

struct EmptinessReport {
  /// True iff an instance with e(I) != empty was found.
  bool witness_found = false;
  /// The witness (valid iff witness_found).
  std::shared_ptr<Instance> witness;
  /// True iff all instances within (max_nodes, max_depth) were enumerated
  /// without exceeding eval_budget — i.e. "empty" is exhaustive w.r.t. the
  /// bounds, not just sampled.
  bool exhaustive_within_bounds = false;
  int64_t instances_checked = 0;
};

/// Searches for an instance on which `expr` is non-empty. Errors if expr
/// evaluation fails structurally. When `rig` is non-null, only instances
/// satisfying the RIG are generated (Theorem 3.6's refinement).
Result<EmptinessReport> CheckEmptiness(const ExprPtr& expr,
                                       const EmptinessOptions& options = {},
                                       const Digraph* rig = nullptr);

/// Equivalence via emptiness of the symmetric difference
/// (e1 - e2) ∪ (e2 - e1) (Section 3). The report's witness, if found, is a
/// counterexample instance where the two expressions differ.
Result<EmptinessReport> CheckEquivalence(const ExprPtr& e1, const ExprPtr& e2,
                                         const EmptinessOptions& options = {},
                                         const Digraph* rig = nullptr);

/// Enumerates canonical instances over the given names (forest shapes x
/// name assignments x per-region pattern assignments) within the bounds,
/// invoking `fn` on each; `fn` returning true stops the walk. Returns false
/// if the budget was exhausted before the enumeration completed. Exposed
/// for the expressiveness harnesses.
bool EnumerateInstances(const std::vector<std::string>& names,
                        const std::vector<Pattern>& patterns, int max_nodes,
                        int max_depth, int64_t budget, const Digraph* rig,
                        const std::function<bool(const Instance&)>& fn);

}  // namespace regal

#endif  // REGAL_FMFT_EMPTINESS_H_
