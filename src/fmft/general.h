#ifndef REGAL_FMFT_GENERAL_H_
#define REGAL_FMFT_GENERAL_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fmft/formula.h"
#include "fmft/model.h"

namespace regal {

class GeneralFormula;
using GeneralFormulaPtr = std::shared_ptr<const GeneralFormula>;

/// Node kinds of *general* FMFT formulas (Section 3): full first-order
/// logic over the monadic predicates and the ⊃ / < relations, with named
/// variables and arbitrary quantification. Sections 5.1/5.2 observe that
/// direct inclusion and both-included "can be expressed by FMFT formulas"
/// even though Theorems 5.1/5.3 bar them from the *restricted* fragment —
/// this module makes that separation executable.
enum class GeneralKind {
  kPred,    // Q(x)
  kPrefix,  // x ⊃ y (x a proper prefix of y)
  kBefore,  // x < y (horizontal order)
  kEquals,  // x = y
  kNot,
  kAnd,
  kOr,
  kExists,  // (∃v) φ
  kForall,  // (∀v) φ
};

/// An immutable general FMFT formula with named variables.
class GeneralFormula {
 public:
  GeneralKind kind() const { return kind_; }
  const std::string& predicate() const { return predicate_; }
  const std::string& var_a() const { return var_a_; }
  const std::string& var_b() const { return var_b_; }
  const GeneralFormulaPtr& left() const { return children_[0]; }
  const GeneralFormulaPtr& right() const { return children_[1]; }

  /// Truth value under an environment binding every free variable to a
  /// word index of `model`. Quantifiers range over the words in t (the
  /// only elements that can satisfy any predicate — sufficient for the
  /// formulas arising from the region algebra, whose atoms are guarded by
  /// predicates).
  bool Holds(const FmftModel& model,
             const std::map<std::string, size_t>& env) const;

  /// The word indices w such that φ holds with `free_var` bound to w.
  std::vector<size_t> Satisfiers(const FmftModel& model,
                                 const std::string& free_var) const;

  /// Free variables, sorted.
  std::vector<std::string> FreeVariables() const;

  std::string ToString() const;

  // Factories.
  static GeneralFormulaPtr Pred(std::string predicate, std::string var);
  static GeneralFormulaPtr Prefix(std::string a, std::string b);
  static GeneralFormulaPtr Before(std::string a, std::string b);
  static GeneralFormulaPtr Equals(std::string a, std::string b);
  static GeneralFormulaPtr Not(GeneralFormulaPtr f);
  static GeneralFormulaPtr And(GeneralFormulaPtr a, GeneralFormulaPtr b);
  static GeneralFormulaPtr Or(GeneralFormulaPtr a, GeneralFormulaPtr b);
  static GeneralFormulaPtr Exists(std::string var, GeneralFormulaPtr f);
  static GeneralFormulaPtr Forall(std::string var, GeneralFormulaPtr f);

 private:
  GeneralFormula(GeneralKind kind, std::string predicate, std::string a,
                 std::string b, std::vector<GeneralFormulaPtr> children)
      : kind_(kind),
        predicate_(std::move(predicate)),
        var_a_(std::move(a)),
        var_b_(std::move(b)),
        children_(std::move(children)) {}

  void CollectFree(std::vector<std::string>* bound,
                   std::vector<std::string>* out) const;

  GeneralKind kind_;
  std::string predicate_;  // kPred only.
  std::string var_a_;      // Atom variables / quantifier variable.
  std::string var_b_;
  std::vector<GeneralFormulaPtr> children_;
};

/// Embeds a restricted formula (Definition 3.1) into the general language;
/// `free_var` names its single free variable.
GeneralFormulaPtr FromRestricted(const FormulaPtr& restricted,
                                 const std::string& free_var);

/// φ(x) defining R ⊃_d S (Section 5.1's operator) in general FMFT:
///   R(x) ∧ ∃y (S(y) ∧ x ⊃ y ∧ ¬∃z (x ⊃ z ∧ z ⊃ y))
/// where z ranges over all words (any predicate). Theorem 5.1 shows no
/// restricted formula does this.
GeneralFormulaPtr DirectIncludingFormula(const std::string& r_name,
                                         const std::string& s_name);

/// φ(x) defining R BI (S, T) (Section 5.2):
///   R(x) ∧ ∃y ∃z (S(y) ∧ T(z) ∧ x ⊃ y ∧ x ⊃ z ∧ y < z).
GeneralFormulaPtr BothIncludedFormula(const std::string& r_name,
                                      const std::string& s_name,
                                      const std::string& t_name);

}  // namespace regal

#endif  // REGAL_FMFT_GENERAL_H_
