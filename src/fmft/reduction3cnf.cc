#include "fmft/reduction3cnf.h"

#include "core/eval.h"
#include "doc/synthetic.h"

namespace regal {

namespace {

std::string LiteralName(Literal lit) {
  int v = lit < 0 ? -lit : lit;
  return (lit > 0 ? "T" : "F") + std::to_string(v);
}

}  // namespace

CnfEmptinessReduction CnfToEmptinessExpr(const Cnf& cnf) {
  CnfEmptinessReduction out;
  out.names.push_back("A");
  for (int v = 1; v <= cnf.num_vars; ++v) {
    out.names.push_back("T" + std::to_string(v));
    out.names.push_back("F" + std::to_string(v));
  }

  ExprPtr a = Expr::Name("A");
  ExprPtr e = a;
  for (int v = 1; v <= cnf.num_vars; ++v) {
    ExprPtr has_t = Expr::Including(a, Expr::Name("T" + std::to_string(v)));
    ExprPtr has_f = Expr::Including(a, Expr::Name("F" + std::to_string(v)));
    // Exactly one value: (has_t ∪ has_f) − (has_t ∩ has_f). The shared
    // subtrees are evaluated once thanks to DAG memoization.
    ExprPtr exactly_one = Expr::Difference(Expr::Union(has_t, has_f),
                                           Expr::Intersect(has_t, has_f));
    e = Expr::Intersect(std::move(e), std::move(exactly_one));
  }
  for (const Clause& clause : cnf.clauses) {
    ExprPtr satisfied;
    for (Literal lit : clause) {
      ExprPtr term = Expr::Including(a, Expr::Name(LiteralName(lit)));
      satisfied = (satisfied == nullptr)
                      ? term
                      : Expr::Union(std::move(satisfied), std::move(term));
    }
    if (satisfied != nullptr) {
      e = Expr::Intersect(std::move(e), std::move(satisfied));
    }
  }
  out.expr = std::move(e);
  return out;
}

Instance AssignmentToInstance(const Cnf& cnf,
                              const std::vector<bool>& assignment) {
  NodeSpec a{"A", {}};
  for (int v = 1; v <= cnf.num_vars; ++v) {
    a.children.push_back(NodeSpec{
        (assignment[static_cast<size_t>(v)] ? "T" : "F") + std::to_string(v),
        {}});
  }
  Instance instance = FromForest({a});
  // Define every reduction name, including the unused polarity leaves.
  for (int v = 1; v <= cnf.num_vars; ++v) {
    for (const char* polarity : {"T", "F"}) {
      std::string name = polarity + std::to_string(v);
      if (!instance.Has(name)) instance.SetRegionSet(name, RegionSet());
    }
  }
  return instance;
}

bool EmptinessByAssignmentSearch(const Cnf& cnf, const ExprPtr& expr,
                                 int64_t* checked) {
  if (checked != nullptr) *checked = 0;
  const uint64_t total = uint64_t{1} << cnf.num_vars;
  std::vector<bool> assignment(static_cast<size_t>(cnf.num_vars + 1), false);
  for (uint64_t mask = 0; mask < total; ++mask) {
    for (int v = 1; v <= cnf.num_vars; ++v) {
      assignment[static_cast<size_t>(v)] = (mask >> (v - 1)) & 1;
    }
    Instance instance = AssignmentToInstance(cnf, assignment);
    if (checked != nullptr) ++*checked;
    auto result = Evaluate(instance, expr);
    if (result.ok() && !result->empty()) return false;  // Witness found.
  }
  return true;
}

}  // namespace regal
