#include "fmft/model.h"

#include <algorithm>
#include <map>

#include "util/stringutil.h"

namespace regal {

bool IsProperPrefix(const std::string& u, const std::string& v) {
  return u.size() < v.size() && v.compare(0, u.size(), u) == 0;
}

bool IsLexBefore(const std::string& u, const std::string& v) {
  if (IsProperPrefix(u, v) || IsProperPrefix(v, u) || u == v) return false;
  return u < v;
}

Status FmftModel::AddWord(std::string word, const std::vector<int>& predicates) {
  for (const std::string& w : words_) {
    if (w == word) {
      return Status::AlreadyExists("word '" + word + "' already in the model");
    }
  }
  for (char c : word) {
    if (c != '0' && c != '1') {
      return Status::InvalidArgument("word '" + word + "' is not binary");
    }
  }
  words_.push_back(std::move(word));
  membership_.emplace_back(predicate_names_.size(), false);
  for (int q : predicates) {
    membership_.back()[static_cast<size_t>(q)] = true;
  }
  return Status::OK();
}

bool FmftModel::ProperPrefix(size_t u, size_t v) const {
  return IsProperPrefix(words_[u], words_[v]);
}

bool FmftModel::LexBefore(size_t u, size_t v) const {
  return IsLexBefore(words_[u], words_[v]);
}

Status FmftModel::ValidateRepresentation() const {
  for (size_t i = 0; i < words_.size(); ++i) {
    int region_memberships = 0;
    for (int q = 0; q < num_region_names_; ++q) {
      if (membership_[i][static_cast<size_t>(q)]) ++region_memberships;
    }
    if (region_memberships != 1) {
      return Status::FailedPrecondition(
          "word '" + words_[i] + "' belongs to " +
          std::to_string(region_memberships) +
          " region predicates (must be exactly 1)");
    }
  }
  return Status::OK();
}

FmftModel ModelFromInstance(const Instance& instance,
                            const std::vector<Pattern>& patterns,
                            std::vector<Region>* region_of) {
  std::vector<std::string> predicate_names = instance.names();
  const int num_region_names = static_cast<int>(predicate_names.size());
  for (const Pattern& p : patterns) predicate_names.push_back(p.CacheKey());
  FmftModel model(std::move(predicate_names), num_region_names);

  const size_t n = instance.TreeSize();
  std::vector<std::string> words(n);
  std::vector<int> child_count(n, 0);
  int root_count = 0;
  if (region_of != nullptr) region_of->clear();
  for (size_t i = 0; i < n; ++i) {
    int parent = instance.TreeParent(i);
    int index_among_siblings;
    std::string parent_word;
    if (parent < 0) {
      index_among_siblings = root_count++;
    } else {
      index_among_siblings = child_count[static_cast<size_t>(parent)]++;
      parent_word = words[static_cast<size_t>(parent)];
    }
    // The i-th child of w is w + "1"*i + "0": siblings are pairwise
    // lex-incomparable and ordered left to right; only the parent word is a
    // prefix.
    words[i] = parent_word + std::string(static_cast<size_t>(index_among_siblings), '1') + "0";
    std::vector<int> predicates{instance.TreeNameId(i)};
    for (size_t j = 0; j < patterns.size(); ++j) {
      if (instance.W(instance.TreeRegion(i), patterns[j])) {
        predicates.push_back(num_region_names + static_cast<int>(j));
      }
    }
    Status st = model.AddWord(words[i], predicates);
    (void)st;  // Words are unique by construction.
    if (region_of != nullptr) region_of->push_back(instance.TreeRegion(i));
  }
  return model;
}

Result<Instance> InstanceFromModel(const FmftModel& model) {
  REGAL_RETURN_NOT_OK(model.ValidateRepresentation());
  const size_t n = model.NumWords();

  // Sort word indices in DFS preorder: ancestors first, siblings by lex.
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (model.ProperPrefix(a, b)) return true;
    if (model.ProperPrefix(b, a)) return false;
    return model.Word(a) < model.Word(b);
  });

  // Stack sweep assigning offsets: a word's region closes after all words
  // it is a proper prefix of.
  std::map<std::string, std::vector<Region>> sets;
  std::vector<std::vector<Region>> pattern_regions(
      model.predicate_names().size());
  struct Open {
    size_t word;
    Offset left;
  };
  std::vector<Open> stack;
  Offset cursor = 0;
  auto close_top = [&](std::vector<Open>* s) {
    const Open& top = s->back();
    Region r{top.left, cursor++};
    for (size_t q = 0; q < model.predicate_names().size(); ++q) {
      if (model.InPredicate(top.word, q)) {
        if (static_cast<int>(q) < model.num_region_names()) {
          sets[model.predicate_names()[q]].push_back(r);
        } else {
          pattern_regions[q].push_back(r);
        }
      }
    }
    s->pop_back();
  };
  for (size_t idx : order) {
    while (!stack.empty() && !model.ProperPrefix(stack.back().word, idx)) {
      close_top(&stack);
    }
    stack.push_back(Open{idx, cursor++});
  }
  while (!stack.empty()) close_top(&stack);

  Instance instance;
  for (auto& [name, regions] : sets) {
    instance.SetRegionSet(name, RegionSet::FromUnsorted(std::move(regions)));
  }
  // Region names with no member words still exist (empty).
  for (int q = 0; q < model.num_region_names(); ++q) {
    const std::string& name =
        model.predicate_names()[static_cast<size_t>(q)];
    if (!instance.Has(name)) instance.SetRegionSet(name, RegionSet());
  }
  for (size_t q = static_cast<size_t>(model.num_region_names());
       q < model.predicate_names().size(); ++q) {
    REGAL_ASSIGN_OR_RETURN(
        Pattern p, Pattern::FromCacheKey(model.predicate_names()[q]));
    instance.SetSyntheticPattern(
        p, RegionSet::FromUnsorted(std::move(pattern_regions[q])));
  }
  return instance;
}

}  // namespace regal
