#ifndef REGAL_FMFT_MODEL_H_
#define REGAL_FMFT_MODEL_H_

#include <string>
#include <vector>

#include "core/instance.h"
#include "text/pattern.h"
#include "util/status.h"

namespace regal {

/// A finite model of the first-order monadic theory of binary trees (FMFT,
/// Section 3): t = ({0,1}*, ⊃, <, Q_1, ..., Q_{n+k}).
///
/// Only the *words in t* (the finitely many strings belonging to some Q_i)
/// matter for restricted-formula evaluation, so the model stores exactly
/// those. Relations:
///  * u ⊃ v  — u is a proper prefix of v;
///  * u < v  — u is lexicographically before v *on an incomparable pair*
///    (some common prefix w has w0 ⊑ u and w1 ⊑ v). This is the horizontal
///    order of the tree; prefix-comparable pairs are ordered by ⊃, not <,
///    which is what makes Definition 3.2(2) ("u precedes v (that does not
///    have u as a prefix)") line up with region precedence.
class FmftModel {
 public:
  FmftModel() = default;

  /// Predicate names in order: the n region names, then the k pattern keys.
  FmftModel(std::vector<std::string> predicate_names, int num_region_names)
      : predicate_names_(std::move(predicate_names)),
        num_region_names_(num_region_names) {}

  /// Adds a word with its predicate memberships (indices into
  /// predicate_names()). Duplicate words are rejected.
  Status AddWord(std::string word, const std::vector<int>& predicates);

  size_t NumWords() const { return words_.size(); }
  const std::string& Word(size_t i) const { return words_[i]; }
  const std::vector<std::string>& predicate_names() const {
    return predicate_names_;
  }
  int num_region_names() const { return num_region_names_; }

  /// Membership of word i in predicate q.
  bool InPredicate(size_t i, size_t q) const {
    return membership_[i][q];
  }

  /// Word-level relations (by index).
  bool ProperPrefix(size_t u, size_t v) const;
  bool LexBefore(size_t u, size_t v) const;

  /// Checks the representation conditions of Definition 3.2: the region
  /// predicates Q_1..Q_n are pairwise disjoint, every word is in some
  /// region predicate, and pattern predicates only mark such words.
  Status ValidateRepresentation() const;

 private:
  std::vector<std::string> predicate_names_;
  int num_region_names_ = 0;
  std::vector<std::string> words_;
  std::vector<std::vector<bool>> membership_;  // [word][predicate].
};

/// Word-string relations (free functions, used by tests).
bool IsProperPrefix(const std::string& u, const std::string& v);
bool IsLexBefore(const std::string& u, const std::string& v);

/// Definition 3.2, constructive direction: builds a model representing
/// `instance` w.r.t. `patterns`. Words encode the instance forest (i-th
/// child of w gets w + "1"*i + "0"), so direct prefix = direct inclusion
/// and the horizontal order = region precedence. Also returns (via
/// `region_of`) the region represented by each model word, in word order.
FmftModel ModelFromInstance(const Instance& instance,
                            const std::vector<Pattern>& patterns,
                            std::vector<Region>* region_of = nullptr);

/// The converse: builds an instance represented by `model` (any model
/// passing ValidateRepresentation represents one). Region names/pattern
/// keys are the model's predicate names; patterns are re-parsed from keys.
Result<Instance> InstanceFromModel(const FmftModel& model);

}  // namespace regal

#endif  // REGAL_FMFT_MODEL_H_
