#include "fmft/general.h"

#include <algorithm>

namespace regal {

bool GeneralFormula::Holds(const FmftModel& model,
                           const std::map<std::string, size_t>& env) const {
  switch (kind_) {
    case GeneralKind::kPred: {
      size_t w = env.at(var_a_);
      for (size_t q = 0; q < model.predicate_names().size(); ++q) {
        if (model.predicate_names()[q] == predicate_) {
          return model.InPredicate(w, q);
        }
      }
      return false;
    }
    case GeneralKind::kPrefix:
      return model.ProperPrefix(env.at(var_a_), env.at(var_b_));
    case GeneralKind::kBefore:
      return model.LexBefore(env.at(var_a_), env.at(var_b_));
    case GeneralKind::kEquals:
      return env.at(var_a_) == env.at(var_b_);
    case GeneralKind::kNot:
      return !children_[0]->Holds(model, env);
    case GeneralKind::kAnd:
      return children_[0]->Holds(model, env) &&
             children_[1]->Holds(model, env);
    case GeneralKind::kOr:
      return children_[0]->Holds(model, env) ||
             children_[1]->Holds(model, env);
    case GeneralKind::kExists:
    case GeneralKind::kForall: {
      std::map<std::string, size_t> extended = env;
      for (size_t w = 0; w < model.NumWords(); ++w) {
        extended[var_a_] = w;
        bool holds = children_[0]->Holds(model, extended);
        if (kind_ == GeneralKind::kExists && holds) return true;
        if (kind_ == GeneralKind::kForall && !holds) return false;
      }
      return kind_ == GeneralKind::kForall;
    }
  }
  return false;
}

std::vector<size_t> GeneralFormula::Satisfiers(
    const FmftModel& model, const std::string& free_var) const {
  std::vector<size_t> out;
  std::map<std::string, size_t> env;
  for (size_t w = 0; w < model.NumWords(); ++w) {
    env[free_var] = w;
    if (Holds(model, env)) out.push_back(w);
  }
  return out;
}

void GeneralFormula::CollectFree(std::vector<std::string>* bound,
                                 std::vector<std::string>* out) const {
  auto is_bound = [&](const std::string& v) {
    return std::find(bound->begin(), bound->end(), v) != bound->end();
  };
  switch (kind_) {
    case GeneralKind::kPred:
      if (!is_bound(var_a_)) out->push_back(var_a_);
      break;
    case GeneralKind::kPrefix:
    case GeneralKind::kBefore:
    case GeneralKind::kEquals:
      if (!is_bound(var_a_)) out->push_back(var_a_);
      if (!is_bound(var_b_)) out->push_back(var_b_);
      break;
    case GeneralKind::kNot:
      children_[0]->CollectFree(bound, out);
      break;
    case GeneralKind::kAnd:
    case GeneralKind::kOr:
      children_[0]->CollectFree(bound, out);
      children_[1]->CollectFree(bound, out);
      break;
    case GeneralKind::kExists:
    case GeneralKind::kForall:
      bound->push_back(var_a_);
      children_[0]->CollectFree(bound, out);
      bound->pop_back();
      break;
  }
}

std::vector<std::string> GeneralFormula::FreeVariables() const {
  std::vector<std::string> bound;
  std::vector<std::string> out;
  CollectFree(&bound, &out);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::string GeneralFormula::ToString() const {
  switch (kind_) {
    case GeneralKind::kPred:
      return "Q_" + predicate_ + "(" + var_a_ + ")";
    case GeneralKind::kPrefix:
      return var_a_ + " sup " + var_b_;
    case GeneralKind::kBefore:
      return var_a_ + " < " + var_b_;
    case GeneralKind::kEquals:
      return var_a_ + " = " + var_b_;
    case GeneralKind::kNot:
      return "~(" + children_[0]->ToString() + ")";
    case GeneralKind::kAnd:
      return "(" + children_[0]->ToString() + " ^ " +
             children_[1]->ToString() + ")";
    case GeneralKind::kOr:
      return "(" + children_[0]->ToString() + " v " +
             children_[1]->ToString() + ")";
    case GeneralKind::kExists:
      return "(E " + var_a_ + ")(" + children_[0]->ToString() + ")";
    case GeneralKind::kForall:
      return "(A " + var_a_ + ")(" + children_[0]->ToString() + ")";
  }
  return "?";
}

GeneralFormulaPtr GeneralFormula::Pred(std::string predicate,
                                       std::string var) {
  return GeneralFormulaPtr(new GeneralFormula(
      GeneralKind::kPred, std::move(predicate), std::move(var), "", {}));
}
GeneralFormulaPtr GeneralFormula::Prefix(std::string a, std::string b) {
  return GeneralFormulaPtr(new GeneralFormula(
      GeneralKind::kPrefix, "", std::move(a), std::move(b), {}));
}
GeneralFormulaPtr GeneralFormula::Before(std::string a, std::string b) {
  return GeneralFormulaPtr(new GeneralFormula(
      GeneralKind::kBefore, "", std::move(a), std::move(b), {}));
}
GeneralFormulaPtr GeneralFormula::Equals(std::string a, std::string b) {
  return GeneralFormulaPtr(new GeneralFormula(
      GeneralKind::kEquals, "", std::move(a), std::move(b), {}));
}
GeneralFormulaPtr GeneralFormula::Not(GeneralFormulaPtr f) {
  return GeneralFormulaPtr(new GeneralFormula(GeneralKind::kNot, "", "", "",
                                              {std::move(f)}));
}
GeneralFormulaPtr GeneralFormula::And(GeneralFormulaPtr a,
                                      GeneralFormulaPtr b) {
  return GeneralFormulaPtr(new GeneralFormula(
      GeneralKind::kAnd, "", "", "", {std::move(a), std::move(b)}));
}
GeneralFormulaPtr GeneralFormula::Or(GeneralFormulaPtr a,
                                     GeneralFormulaPtr b) {
  return GeneralFormulaPtr(new GeneralFormula(
      GeneralKind::kOr, "", "", "", {std::move(a), std::move(b)}));
}
GeneralFormulaPtr GeneralFormula::Exists(std::string var,
                                         GeneralFormulaPtr f) {
  return GeneralFormulaPtr(new GeneralFormula(
      GeneralKind::kExists, "", std::move(var), "", {std::move(f)}));
}
GeneralFormulaPtr GeneralFormula::Forall(std::string var,
                                         GeneralFormulaPtr f) {
  return GeneralFormulaPtr(new GeneralFormula(
      GeneralKind::kForall, "", std::move(var), "", {std::move(f)}));
}

GeneralFormulaPtr FromRestricted(const FormulaPtr& restricted,
                                 const std::string& free_var) {
  switch (restricted->kind()) {
    case FormulaKind::kPred:
      return GeneralFormula::Pred(restricted->predicate(), free_var);
    case FormulaKind::kOr:
      return GeneralFormula::Or(FromRestricted(restricted->left(), free_var),
                                FromRestricted(restricted->right(), free_var));
    case FormulaKind::kAnd:
      return GeneralFormula::And(
          FromRestricted(restricted->left(), free_var),
          FromRestricted(restricted->right(), free_var));
    case FormulaKind::kAndNot:
      return GeneralFormula::And(
          FromRestricted(restricted->left(), free_var),
          GeneralFormula::Not(
              FromRestricted(restricted->right(), free_var)));
    default: {
      // (∃y) φ1(x) ∧ φ2(y) ∧ relation. Fresh variable per nesting level.
      std::string y = free_var + "'";
      GeneralFormulaPtr relation;
      switch (restricted->kind()) {
        case FormulaKind::kExistsXsupY:
          relation = GeneralFormula::Prefix(free_var, y);
          break;
        case FormulaKind::kExistsYsupX:
          relation = GeneralFormula::Prefix(y, free_var);
          break;
        case FormulaKind::kExistsXbeforeY:
          relation = GeneralFormula::Before(free_var, y);
          break;
        default:
          relation = GeneralFormula::Before(y, free_var);
          break;
      }
      return GeneralFormula::Exists(
          y, GeneralFormula::And(
                 FromRestricted(restricted->left(), free_var),
                 GeneralFormula::And(FromRestricted(restricted->right(), y),
                                     std::move(relation))));
    }
  }
}

GeneralFormulaPtr DirectIncludingFormula(const std::string& r_name,
                                         const std::string& s_name) {
  using G = GeneralFormula;
  GeneralFormulaPtr no_between = G::Not(G::Exists(
      "z", G::And(G::Prefix("x", "z"), G::Prefix("z", "y"))));
  return G::And(
      G::Pred(r_name, "x"),
      G::Exists("y", G::And(G::Pred(s_name, "y"),
                            G::And(G::Prefix("x", "y"),
                                   std::move(no_between)))));
}

GeneralFormulaPtr BothIncludedFormula(const std::string& r_name,
                                      const std::string& s_name,
                                      const std::string& t_name) {
  using G = GeneralFormula;
  return G::And(
      G::Pred(r_name, "x"),
      G::Exists(
          "y",
          G::And(G::Pred(s_name, "y"),
                 G::And(G::Prefix("x", "y"),
                        G::Exists(
                            "z", G::And(G::Pred(t_name, "z"),
                                        G::And(G::Prefix("x", "z"),
                                               G::Before("y", "z"))))))));
}

}  // namespace regal
