#include "fmft/emptiness.h"

#include <algorithm>

#include "core/eval.h"
#include "doc/synthetic.h"
#include "safety/failpoint.h"
#include "util/random.h"

namespace regal {

namespace {

// Enumerates ordered forests with name assignments by backtracking. All
// sibling vectors are pre-reserved so NodeSpec references stay stable
// across recursive construction.
class ForestEnumerator {
 public:
  ForestEnumerator(const std::vector<std::string>& names,
                   const std::vector<Pattern>& patterns, int max_nodes,
                   int max_depth, int64_t budget, const Digraph* rig,
                   std::function<bool(const Instance&)> fn)
      : names_(names),
        patterns_(patterns),
        max_nodes_(max_nodes),
        max_depth_(max_depth),
        budget_(budget),
        rig_(rig),
        fn_(std::move(fn)) {}

  // Returns true iff the enumeration completed within budget.
  bool Run() {
    roots_.reserve(static_cast<size_t>(max_nodes_));
    for (int total = 0; total <= max_nodes_ && !stopped_ && budget_ > 0;
         ++total) {
      Forest(total, 1, "", &roots_, [&] { Emit(); });
    }
    return budget_ > 0;
  }

  bool stopped() const { return stopped_; }
  int64_t checked() const { return checked_; }

 private:
  std::vector<std::string> AllowedNames(const std::string& parent) const {
    if (rig_ == nullptr || parent.empty()) return names_;
    std::vector<std::string> out;
    auto id = rig_->FindNode(parent);
    if (!id.ok()) return out;
    for (Digraph::NodeId w : rig_->OutNeighbors(*id)) {
      out.push_back(rig_->Label(w));
    }
    return out;
  }

  // Appends a forest of exactly m nodes to *out, then invokes k; explores
  // every choice by backtracking.
  void Forest(int m, int depth, const std::string& parent,
              std::vector<NodeSpec>* out, const std::function<void()>& k) {
    if (stopped_ || budget_ <= 0) return;
    if (m == 0) {
      k();
      return;
    }
    for (int j = 1; j <= m && !stopped_ && budget_ > 0; ++j) {
      if (j > 1 && depth >= max_depth_) break;  // Leaf-only at max depth.
      for (const std::string& name : AllowedNames(parent)) {
        out->push_back(NodeSpec{name, {}});
        NodeSpec& node = out->back();
        node.children.reserve(static_cast<size_t>(j - 1));
        Forest(j - 1, depth + 1, name, &node.children,
               [&] { Forest(m - j, depth, parent, out, k); });
        out->pop_back();
        if (stopped_ || budget_ <= 0) return;
      }
    }
  }

  void Emit() {
    Instance base = FromForest(roots_);
    for (const std::string& name : names_) {
      if (!base.Has(name)) base.SetRegionSet(name, RegionSet());
    }
    const size_t m = base.NumRegions();
    const size_t k = patterns_.size();
    const size_t bits = m * k;
    if (bits > 20) {
      // Too many pattern assignments to enumerate; charge the budget and
      // skip (the randomized phase still samples this regime).
      budget_ = 0;
      return;
    }
    RegionSet all = base.AllRegions();
    for (uint64_t mask = 0; mask < (uint64_t{1} << bits); ++mask) {
      if (stopped_ || budget_-- <= 0) return;
      Instance instance = base.Clone();
      for (size_t p = 0; p < k; ++p) {
        std::vector<Region> where;
        for (size_t r = 0; r < m; ++r) {
          if ((mask >> (p * m + r)) & 1) where.push_back(all[r]);
        }
        instance.SetSyntheticPattern(
            patterns_[p], RegionSet::FromSortedUnique(std::move(where)));
      }
      ++checked_;
      if (fn_(instance)) {
        stopped_ = true;
        return;
      }
    }
  }

  const std::vector<std::string>& names_;
  const std::vector<Pattern>& patterns_;
  const int max_nodes_;
  const int max_depth_;
  int64_t budget_;
  const Digraph* rig_;
  const std::function<bool(const Instance&)> fn_;
  std::vector<NodeSpec> roots_;
  bool stopped_ = false;
  int64_t checked_ = 0;
};

}  // namespace

bool EnumerateInstances(const std::vector<std::string>& names,
                        const std::vector<Pattern>& patterns, int max_nodes,
                        int max_depth, int64_t budget, const Digraph* rig,
                        const std::function<bool(const Instance&)>& fn) {
  ForestEnumerator enumerator(names, patterns, max_nodes, max_depth, budget,
                              rig, fn);
  return enumerator.Run();
}

Result<EmptinessReport> CheckEmptiness(const ExprPtr& expr,
                                       const EmptinessOptions& options,
                                       const Digraph* rig) {
  REGAL_RETURN_NOT_OK(safety::CheckFailpoint("fmft.emptiness"));
  std::vector<std::string> names = expr->NamesUsed();
  if (rig != nullptr) names = rig->Labels();
  if (names.empty()) {
    return Status::InvalidArgument("expression mentions no region names");
  }
  std::vector<Pattern> patterns = expr->PatternsUsed();

  EmptinessReport report;
  Status eval_error = Status::OK();
  auto probe = [&](const Instance& instance) {
    // Per-instance checkpoint: the bounded-model search honours the same
    // deadlines/cancellation as query evaluation, surfaced through
    // eval_error like a structural evaluation failure.
    if (options.context != nullptr) {
      Status governed = options.context->Check();
      if (!governed.ok()) {
        eval_error = governed;
        return true;
      }
    }
    auto result = Evaluate(instance, expr);
    if (!result.ok()) {
      eval_error = result.status();
      return true;
    }
    if (!result->empty()) {
      report.witness_found = true;
      report.witness = std::make_shared<Instance>(instance.Clone());
      return true;
    }
    return false;
  };

  ForestEnumerator enumerator(names, patterns, options.max_nodes,
                              options.max_depth, options.eval_budget, rig,
                              probe);
  bool complete = enumerator.Run();
  report.instances_checked = enumerator.checked();
  REGAL_RETURN_NOT_OK(eval_error);
  if (report.witness_found) return report;
  report.exhaustive_within_bounds = complete;

  // Randomized phase: larger instances than the exhaustive bounds cover.
  Rng rng(options.seed);
  for (int i = 0; i < options.random_samples; ++i) {
    Instance instance = [&] {
      if (rig != nullptr) {
        return RandomInstanceForRig(rng, *rig, options.random_nodes,
                                    2 * options.max_depth);
      }
      RandomInstanceOptions rio;
      rio.num_regions = options.random_nodes;
      rio.max_depth = 2 * options.max_depth;
      rio.names = names;
      return RandomLaminarInstance(rng, rio);
    }();
    for (const std::string& name : names) {
      if (!instance.Has(name)) instance.SetRegionSet(name, RegionSet());
    }
    AssignRandomPatterns(&instance, rng, patterns, 0.3);
    ++report.instances_checked;
    if (probe(instance)) break;
  }
  REGAL_RETURN_NOT_OK(eval_error);
  return report;
}

Result<EmptinessReport> CheckEquivalence(const ExprPtr& e1, const ExprPtr& e2,
                                         const EmptinessOptions& options,
                                         const Digraph* rig) {
  ExprPtr difference =
      Expr::Union(Expr::Difference(e1, e2), Expr::Difference(e2, e1));
  return CheckEmptiness(difference, options, rig);
}

}  // namespace regal
