#ifndef REGAL_FMFT_FORMULA_H_
#define REGAL_FMFT_FORMULA_H_

#include <memory>
#include <string>
#include <vector>

#include "fmft/model.h"

namespace regal {

/// Node kinds of restricted FMFT formulas (Definition 3.1). Every formula
/// has exactly one free variable; the Exists kinds bind a fresh variable y
/// and relate it to the free variable x:
///   kExists*   = (∃y) φ1(x) ∧ φ2(y) ∧ <relation>.
enum class FormulaKind {
  kPred,           // Q_i(x)
  kOr,             // φ1 ∨ φ2
  kAnd,            // φ1 ∧ φ2
  kAndNot,         // φ1 ∧ ¬φ2
  kExistsXsupY,    // (∃y) φ1(x) ∧ φ2(y) ∧ x ⊃ y   (x a proper prefix of y)
  kExistsYsupX,    // (∃y) φ1(x) ∧ φ2(y) ∧ y ⊃ x
  kExistsXbeforeY, // (∃y) φ1(x) ∧ φ2(y) ∧ x < y
  kExistsYbeforeX, // (∃y) φ1(x) ∧ φ2(y) ∧ y < x
};

class RestrictedFormula;
using FormulaPtr = std::shared_ptr<const RestrictedFormula>;

/// An immutable restricted FMFT formula. φ(t) (the set of words satisfying
/// the formula in model t) is computed by Evaluate.
class RestrictedFormula {
 public:
  FormulaKind kind() const { return kind_; }

  /// For kPred: the predicate name (a region name or pattern cache key).
  const std::string& predicate() const { return predicate_; }

  const FormulaPtr& left() const { return children_[0]; }
  const FormulaPtr& right() const { return children_[1]; }

  /// Number of connective/quantifier nodes (kPred counts 0).
  int Size() const;

  /// φ(t): indices of the model words satisfying the formula. Words are
  /// the only relevant domain elements for restricted formulas (a word
  /// outside every Q_i cannot satisfy any of them). Unknown predicate
  /// names denote the empty predicate.
  std::vector<size_t> Evaluate(const FmftModel& model) const;

  /// Logic-style rendering, e.g. "(∃y) Q_A(x) ∧ Q_B(y) ∧ x ⊃ y".
  std::string ToString() const;

  // Factories.
  static FormulaPtr Pred(std::string name);
  static FormulaPtr Or(FormulaPtr a, FormulaPtr b);
  static FormulaPtr And(FormulaPtr a, FormulaPtr b);
  static FormulaPtr AndNot(FormulaPtr a, FormulaPtr b);
  static FormulaPtr Exists(FormulaKind kind, FormulaPtr a, FormulaPtr b);

 private:
  RestrictedFormula(FormulaKind kind, std::string predicate,
                    std::vector<FormulaPtr> children)
      : kind_(kind),
        predicate_(std::move(predicate)),
        children_(std::move(children)) {}

  std::string ToStringImpl(const std::string& var, int depth) const;

  FormulaKind kind_;
  std::string predicate_;
  std::vector<FormulaPtr> children_;
};

}  // namespace regal

#endif  // REGAL_FMFT_FORMULA_H_
