#include "relational/table.h"

#include <algorithm>

namespace regal {

namespace {

struct RowLess {
  bool operator()(const std::vector<Region>& a,
                  const std::vector<Region>& b) const {
    RegionDocumentOrder less;
    for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
      if (a[i] != b[i]) return less(a[i], b[i]);
    }
    return a.size() < b.size();
  }
};

std::vector<std::vector<Region>> Normalize(
    std::vector<std::vector<Region>> rows) {
  std::sort(rows.begin(), rows.end(), RowLess());
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
  return rows;
}

Status CheckDisjointColumns(const RegionTable& a, const RegionTable& b) {
  for (const std::string& c : a.columns()) {
    for (const std::string& d : b.columns()) {
      if (c == d) {
        return Status::InvalidArgument("duplicate column '" + c +
                                       "' across operands");
      }
    }
  }
  return Status::OK();
}

}  // namespace

RegionTable RegionTable::FromSet(const std::string& column,
                                 const RegionSet& set) {
  RegionTable t;
  t.columns_ = {column};
  t.rows_.reserve(set.size());
  for (const Region& r : set) t.rows_.push_back({r});
  return t;
}

RegionTable RegionTable::FromRows(std::vector<std::string> columns,
                                  std::vector<std::vector<Region>> rows) {
  RegionTable t;
  t.columns_ = std::move(columns);
  t.rows_ = Normalize(std::move(rows));
  return t;
}

Result<size_t> RegionTable::ColumnIndex(const std::string& column) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i] == column) return i;
  }
  return Status::NotFound("no column '" + column + "'");
}

Result<RegionSet> RegionTable::Column(const std::string& column) const {
  REGAL_ASSIGN_OR_RETURN(size_t index, ColumnIndex(column));
  std::vector<Region> out;
  out.reserve(rows_.size());
  for (const auto& row : rows_) out.push_back(row[index]);
  return RegionSet::FromUnsorted(std::move(out));
}

std::string RegionTable::ToString() const {
  std::string out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i];
  }
  out += " |";
  for (const auto& row : rows_) {
    out += " (";
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ",";
      out += regal::ToString(row[i]);
    }
    out += ")";
  }
  return out;
}

bool EvalRegionPredicate(RegionPredicate pred, const Region& a,
                         const Region& b) {
  switch (pred) {
    case RegionPredicate::kEquals:
      return a == b;
    case RegionPredicate::kIncludes:
      return StrictlyIncludes(a, b);
    case RegionPredicate::kIncludedIn:
      return StrictlyIncludes(b, a);
    case RegionPredicate::kPrecedes:
      return Precedes(a, b);
    case RegionPredicate::kFollows:
      return Precedes(b, a);
  }
  return false;
}

Result<RegionTable> Product(const RegionTable& a, const RegionTable& b) {
  REGAL_RETURN_NOT_OK(CheckDisjointColumns(a, b));
  std::vector<std::string> columns = a.columns();
  columns.insert(columns.end(), b.columns().begin(), b.columns().end());
  std::vector<std::vector<Region>> rows;
  rows.reserve(a.NumRows() * b.NumRows());
  for (const auto& ra : a.rows()) {
    for (const auto& rb : b.rows()) {
      std::vector<Region> row = ra;
      row.insert(row.end(), rb.begin(), rb.end());
      rows.push_back(std::move(row));
    }
  }
  return RegionTable::FromRows(std::move(columns), std::move(rows));
}

Result<RegionTable> Join(const RegionTable& a, const RegionTable& b,
                         const std::string& left_column, RegionPredicate pred,
                         const std::string& right_column) {
  REGAL_RETURN_NOT_OK(CheckDisjointColumns(a, b));
  REGAL_ASSIGN_OR_RETURN(size_t li, a.ColumnIndex(left_column));
  REGAL_ASSIGN_OR_RETURN(size_t ri, b.ColumnIndex(right_column));
  std::vector<std::string> columns = a.columns();
  columns.insert(columns.end(), b.columns().begin(), b.columns().end());
  std::vector<std::vector<Region>> rows;
  // Nested loop; adequate for the extension-demonstration workloads. A
  // production implementation would sort on the join columns.
  for (const auto& ra : a.rows()) {
    for (const auto& rb : b.rows()) {
      if (EvalRegionPredicate(pred, ra[li], rb[ri])) {
        std::vector<Region> row = ra;
        row.insert(row.end(), rb.begin(), rb.end());
        rows.push_back(std::move(row));
      }
    }
  }
  return RegionTable::FromRows(std::move(columns), std::move(rows));
}

Result<RegionTable> SelectWhere(const RegionTable& t,
                                const std::string& left_column,
                                RegionPredicate pred,
                                const std::string& right_column) {
  REGAL_ASSIGN_OR_RETURN(size_t li, t.ColumnIndex(left_column));
  REGAL_ASSIGN_OR_RETURN(size_t ri, t.ColumnIndex(right_column));
  std::vector<std::vector<Region>> rows;
  for (const auto& row : t.rows()) {
    if (EvalRegionPredicate(pred, row[li], row[ri])) rows.push_back(row);
  }
  return RegionTable::FromRows(t.columns(), std::move(rows));
}

Result<RegionTable> Project(const RegionTable& t,
                            const std::vector<std::string>& columns) {
  std::vector<size_t> indices;
  for (const std::string& c : columns) {
    REGAL_ASSIGN_OR_RETURN(size_t i, t.ColumnIndex(c));
    indices.push_back(i);
  }
  std::vector<std::vector<Region>> rows;
  rows.reserve(t.NumRows());
  for (const auto& row : t.rows()) {
    std::vector<Region> projected;
    projected.reserve(indices.size());
    for (size_t i : indices) projected.push_back(row[i]);
    rows.push_back(std::move(projected));
  }
  return RegionTable::FromRows(columns, std::move(rows));
}

namespace {

Status CheckSameSchema(const RegionTable& a, const RegionTable& b) {
  if (a.columns() != b.columns()) {
    return Status::InvalidArgument("schemas differ");
  }
  return Status::OK();
}

}  // namespace

Result<RegionTable> TableUnion(const RegionTable& a, const RegionTable& b) {
  REGAL_RETURN_NOT_OK(CheckSameSchema(a, b));
  std::vector<std::vector<Region>> rows = a.rows();
  rows.insert(rows.end(), b.rows().begin(), b.rows().end());
  return RegionTable::FromRows(a.columns(), std::move(rows));
}

Result<RegionTable> TableDifference(const RegionTable& a,
                                    const RegionTable& b) {
  REGAL_RETURN_NOT_OK(CheckSameSchema(a, b));
  std::vector<std::vector<Region>> rows;
  for (const auto& row : a.rows()) {
    bool in_b = std::binary_search(b.rows().begin(), b.rows().end(), row,
                                   [](const std::vector<Region>& x,
                                      const std::vector<Region>& y) {
                                     RegionDocumentOrder less;
                                     for (size_t i = 0;
                                          i < x.size() && i < y.size(); ++i) {
                                       if (x[i] != y[i]) return less(x[i], y[i]);
                                     }
                                     return x.size() < y.size();
                                   });
    if (!in_b) rows.push_back(row);
  }
  return RegionTable::FromRows(a.columns(), std::move(rows));
}

Result<RegionTable> Rename(const RegionTable& t, const std::string& from,
                           const std::string& to) {
  REGAL_ASSIGN_OR_RETURN(size_t index, t.ColumnIndex(from));
  std::vector<std::string> columns = t.columns();
  columns[index] = to;
  return RegionTable::FromRows(std::move(columns),
                               std::vector<std::vector<Region>>(t.rows()));
}

}  // namespace regal
