#ifndef REGAL_RELATIONAL_EXTENDED_VIA_RELATIONAL_H_
#define REGAL_RELATIONAL_EXTENDED_VIA_RELATIONAL_H_

#include "core/instance.h"
#include "core/region_set.h"
#include "relational/table.h"
#include "util/status.h"

namespace regal {

/// Section 7's claim, made executable: "It is easy to see that direct
/// inclusion and both-included can be expressed by this extended language."
/// These functions compute the extended operators purely through the
/// relational layer (products, θ-joins, projections, differences) so the
/// tests can check them against the native tree algorithms.

/// R ⊃_d S via relations:
///   Pairs  = {(r, s) : r ⊃ s}                       (θ-join)
///   Bad    = π_{r,s} {(r, t, s) : r ⊃ t ∧ t ⊃ s}    (two θ-joins over All)
///   Result = π_r (Pairs − Bad)
Result<RegionSet> DirectIncludingRelational(const Instance& instance,
                                            const RegionSet& r,
                                            const RegionSet& s);

/// R BI (S, T) via relations:
///   Result = π_r σ_{s<t} ({(r, s) : r ⊃ s} ⋈_{r=r'} {(r', t) : r' ⊃ t})
Result<RegionSet> BothIncludedRelational(const RegionSet& r,
                                         const RegionSet& s,
                                         const RegionSet& t);

}  // namespace regal

#endif  // REGAL_RELATIONAL_EXTENDED_VIA_RELATIONAL_H_
