#ifndef REGAL_RELATIONAL_TABLE_H_
#define REGAL_RELATIONAL_TABLE_H_

#include <string>
#include <vector>

#include "core/region.h"
#include "core/region_set.h"
#include "util/status.h"

namespace regal {

/// The Section 7 extension: "one may allow queries to have n-ary relations
/// (with attributes over the region domain) as intermediate results, and
/// support joins and not only semi-joins." A RegionTable is such an n-ary
/// relation: named columns, each row a tuple of regions. Rows are kept
/// sorted and deduplicated (set semantics, like the base algebra).
class RegionTable {
 public:
  RegionTable() = default;

  /// A single-column table from a region set.
  static RegionTable FromSet(const std::string& column, const RegionSet& set);

  /// A table with the given columns and rows (sorted/deduplicated).
  static RegionTable FromRows(std::vector<std::string> columns,
                              std::vector<std::vector<Region>> rows);

  const std::vector<std::string>& columns() const { return columns_; }
  const std::vector<std::vector<Region>>& rows() const { return rows_; }
  size_t NumRows() const { return rows_.size(); }
  size_t NumColumns() const { return columns_.size(); }

  /// Index of `column`, or error.
  Result<size_t> ColumnIndex(const std::string& column) const;

  /// The distinct regions of one column, as a RegionSet.
  Result<RegionSet> Column(const std::string& column) const;

  bool operator==(const RegionTable& other) const {
    return columns_ == other.columns_ && rows_ == other.rows_;
  }

  /// "cols | row; row; ..." for diagnostics.
  std::string ToString() const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<Region>> rows_;
};

/// Region-domain comparison predicates for θ-selections and θ-joins.
enum class RegionPredicate {
  kEquals,
  kIncludes,     // left ⊃ right (strict)
  kIncludedIn,   // right ⊃ left
  kPrecedes,     // left < right
  kFollows,      // right < left
};

/// True iff `a <pred> b`.
bool EvalRegionPredicate(RegionPredicate pred, const Region& a,
                         const Region& b);

/// Cartesian product; column names must be disjoint.
Result<RegionTable> Product(const RegionTable& a, const RegionTable& b);

/// θ-join: tuples of a × b where a.`left_column` <pred> b.`right_column`.
/// Column names must be disjoint. Nested-loop with a sort-based fast path
/// for kEquals.
Result<RegionTable> Join(const RegionTable& a, const RegionTable& b,
                         const std::string& left_column, RegionPredicate pred,
                         const std::string& right_column);

/// σ: rows where `left_column` <pred> `right_column` (both in `t`).
Result<RegionTable> SelectWhere(const RegionTable& t,
                                const std::string& left_column,
                                RegionPredicate pred,
                                const std::string& right_column);

/// π: keeps (and reorders to) `columns`, deduplicating rows.
Result<RegionTable> Project(const RegionTable& t,
                            const std::vector<std::string>& columns);

/// Set operations; schemas must match exactly.
Result<RegionTable> TableUnion(const RegionTable& a, const RegionTable& b);
Result<RegionTable> TableDifference(const RegionTable& a,
                                    const RegionTable& b);

/// Renames a column.
Result<RegionTable> Rename(const RegionTable& t, const std::string& from,
                           const std::string& to);

}  // namespace regal

#endif  // REGAL_RELATIONAL_TABLE_H_
