#include "relational/extended_via_relational.h"

namespace regal {

Result<RegionSet> DirectIncludingRelational(const Instance& instance,
                                            const RegionSet& r,
                                            const RegionSet& s) {
  RegionTable rt = RegionTable::FromSet("r", r);
  RegionTable st = RegionTable::FromSet("s", s);
  RegionTable all = RegionTable::FromSet("t", instance.AllRegions());

  REGAL_ASSIGN_OR_RETURN(
      RegionTable pairs, Join(rt, st, "r", RegionPredicate::kIncludes, "s"));
  // Bad: r ⊃ t and t ⊃ s, projected to (r, s).
  REGAL_ASSIGN_OR_RETURN(
      RegionTable rt_pairs,
      Join(rt, all, "r", RegionPredicate::kIncludes, "t"));
  REGAL_ASSIGN_OR_RETURN(
      RegionTable rts,
      Join(rt_pairs, st, "t", RegionPredicate::kIncludes, "s"));
  REGAL_ASSIGN_OR_RETURN(RegionTable bad, Project(rts, {"r", "s"}));
  REGAL_ASSIGN_OR_RETURN(RegionTable direct, TableDifference(pairs, bad));
  REGAL_ASSIGN_OR_RETURN(RegionTable result, Project(direct, {"r"}));
  return result.Column("r");
}

Result<RegionSet> BothIncludedRelational(const RegionSet& r,
                                         const RegionSet& s,
                                         const RegionSet& t) {
  RegionTable rt = RegionTable::FromSet("r", r);
  RegionTable st = RegionTable::FromSet("s", s);
  RegionTable tt = RegionTable::FromSet("t", t);

  REGAL_ASSIGN_OR_RETURN(
      RegionTable rs, Join(rt, st, "r", RegionPredicate::kIncludes, "s"));
  // Join on equal r: rename to keep columns disjoint, then equate.
  REGAL_ASSIGN_OR_RETURN(
      RegionTable rt2,
      Rename(RegionTable::FromSet("r", r), "r", "r2"));
  REGAL_ASSIGN_OR_RETURN(
      RegionTable r2t, Join(rt2, tt, "r2", RegionPredicate::kIncludes, "t"));
  REGAL_ASSIGN_OR_RETURN(
      RegionTable quad, Join(rs, r2t, "r", RegionPredicate::kEquals, "r2"));
  REGAL_ASSIGN_OR_RETURN(
      RegionTable ordered,
      SelectWhere(quad, "s", RegionPredicate::kPrecedes, "t"));
  REGAL_ASSIGN_OR_RETURN(RegionTable result, Project(ordered, {"r"}));
  return result.Column("r");
}

}  // namespace regal
