#ifndef REGAL_QUERY_LEXER_H_
#define REGAL_QUERY_LEXER_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace regal {

/// Token kinds of the PAT-style query language (see parser.h for the
/// grammar).
enum class QueryTokenKind {
  kIdent,    // Region name or keyword (keywords resolved by the parser).
  kString,   // "pattern" (quotes stripped).
  kPipe,     // |
  kAmp,      // &
  kMinus,    // -
  kLParen,   // (
  kRParen,   // )
  kComma,    // ,
  kTilde,    // ~
  kEnd,
};

struct QueryToken {
  QueryTokenKind kind;
  std::string text;
  int position;  // Byte offset in the query, for error messages.
};

/// Splits a query string into tokens. Errors on unterminated strings or
/// unexpected characters, with the offending position.
Result<std::vector<QueryToken>> LexQuery(const std::string& query);

}  // namespace regal

#endif  // REGAL_QUERY_LEXER_H_
