#ifndef REGAL_QUERY_PARSER_H_
#define REGAL_QUERY_PARSER_H_

#include <string>

#include "core/expr.h"
#include "util/status.h"

namespace regal {

/// Recursive-descent parser for the PAT-style query language.
///
/// Grammar (lowest precedence first):
///   expr    := term ('|' term)*                      -- union, left assoc
///   term    := struct (('&' | '-') struct)*          -- ∩ / −, left assoc
///   struct  := postfix (STRUCTOP struct)?            -- right assoc, like
///                                                       the paper's
///                                                       right-grouping
///   postfix := primary ('matching' '~'? STRING)*     -- σ_p; '~' = case-
///                                                       insensitive
///   primary := IDENT
///            | '(' expr ')'
///            | 'bi' '(' expr ',' expr ',' expr ')'   -- both-included
///   STRUCTOP := 'including' | 'within' | 'before' | 'after'
///             | 'dincluding' | 'dwithin'
///
/// Expr::ToString() emits this syntax (fully parenthesized), so
/// ParseQuery(e->ToString()) reproduces e.
Result<ExprPtr> ParseQuery(const std::string& query);

/// Top-level statement verbs:
///   stmt := ('explain' 'analyze'? )? expr
/// `explain e` asks for the optimized plan with cost estimates, without
/// executing; `explain analyze e` executes e with tracing and returns the
/// plan annotated with actual cardinalities/counters/timings.
enum class QueryVerb {
  kRun,
  kExplain,
  kExplainAnalyze,
};

struct QueryStatement {
  QueryVerb verb = QueryVerb::kRun;
  ExprPtr expr;
};

/// Parses a statement. `explain`/`analyze` are contextual keywords: they are
/// only special in leading position, so region names elsewhere may still use
/// them; a region literally named "explain" must be parenthesized in leading
/// position ("(explain) within a").
Result<QueryStatement> ParseStatement(const std::string& query);

}  // namespace regal

#endif  // REGAL_QUERY_PARSER_H_
