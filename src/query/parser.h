#ifndef REGAL_QUERY_PARSER_H_
#define REGAL_QUERY_PARSER_H_

#include <string>

#include "core/expr.h"
#include "util/status.h"

namespace regal {

/// Recursive-descent parser for the PAT-style query language.
///
/// Grammar (lowest precedence first):
///   expr    := term ('|' term)*                      -- union, left assoc
///   term    := struct (('&' | '-') struct)*          -- ∩ / −, left assoc
///   struct  := postfix (STRUCTOP struct)?            -- right assoc, like
///                                                       the paper's
///                                                       right-grouping
///   postfix := primary ('matching' '~'? STRING)*     -- σ_p; '~' = case-
///                                                       insensitive
///   primary := IDENT
///            | '(' expr ')'
///            | 'bi' '(' expr ',' expr ',' expr ')'   -- both-included
///   STRUCTOP := 'including' | 'within' | 'before' | 'after'
///             | 'dincluding' | 'dwithin'
///
/// Expr::ToString() emits this syntax (fully parenthesized), so
/// ParseQuery(e->ToString()) reproduces e.
Result<ExprPtr> ParseQuery(const std::string& query);

}  // namespace regal

#endif  // REGAL_QUERY_PARSER_H_
