#include "query/engine.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <set>
#include <thread>

#include "core/construct.h"
#include "core/simd/simd_kernels.h"
#include "doc/sgml.h"
#include "doc/srccode.h"
#include "exec/thread_pool.h"
#include "obs/export.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "opt/optimizer.h"
#include "query/parser.h"
#include "rig/rig.h"
#include "util/cpu.h"
#include "util/timer.h"

namespace regal {

namespace {

// Mirrors the evaluator's span naming to build the estimate-only plan for
// plain `explain`, which never constructs a Tracer.
obs::Span PlanFromExpr(const ExprPtr& expr, const CatalogStats& stats) {
  obs::Span span;
  span.name = ExprSpanName(*expr);
  span.detail = ExprSpanDetail(*expr);
  span.est_rows = EstimateCost(expr, stats).cardinality;
  for (const ExprPtr& child : expr->children()) {
    span.children.push_back(PlanFromExpr(child, stats));
  }
  return span;
}

// Walks a traced span tree and the executed expression in lockstep, attaching
// the cost model's cardinality estimate to every node it can line up.
// Memoized mentions are childless, so the lockstep stops there.
void AttachEstimates(obs::Span* span, const ExprPtr& expr,
                     const CatalogStats& stats) {
  span->est_rows = EstimateCost(expr, stats).cardinality;
  if (span->children.size() != expr->children().size()) return;
  for (size_t i = 0; i < span->children.size(); ++i) {
    AttachEstimates(&span->children[i], expr->children()[i], stats);
  }
}

Status CheckNames(const Instance& instance,
                  const std::map<std::string, RegionSet>& materialized,
                  const ExprPtr& resolved) {
  for (const std::string& name : resolved->NamesUsed()) {
    if (!instance.Has(name) && materialized.count(name) == 0) {
      return Status::NotFound("unknown region name '" + name + "'");
    }
  }
  return Status::OK();
}

// StatusCodeToString lowered to the label form used by flight-recorder
// records and log fields ("DEADLINE_EXCEEDED" -> "deadline_exceeded").
std::string StatusCodeLabel(StatusCode code) {
  std::string label = StatusCodeToString(code);
  for (char& c : label) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return label;
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

}  // namespace

std::string QueryProfile::Tree() const { return obs::FormatSpanTree(plan); }

std::string QueryProfile::Json() const {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("analyzed").Bool(analyzed);
  w.Key("total_ms").Double(total_ms);
  w.Key("governance").BeginObject();
  w.Key("limits_enforced").Bool(limits_enforced);
  w.Key("degraded").Bool(degraded);
  w.Key("fallbacks").BeginArray();
  for (const std::string& fallback : fallbacks) w.String(fallback);
  w.EndArray();
  w.Key("peak_memory_bytes").Int(peak_memory_bytes);
  w.EndObject();
  w.Key("cache").BeginObject();
  w.Key("enabled").Bool(cache_enabled);
  w.Key("hits").Int(cache.hits);
  w.Key("misses").Int(cache.misses);
  w.Key("inserts").Int(cache.inserts);
  w.Key("evictions").Int(cache.evictions);
  w.Key("insert_failures").Int(cache.insert_failures);
  w.Key("bytes").Int(cache_bytes);
  w.EndObject();
  w.Key("plan");
  obs::WriteSpanJson(plan, &w);
  w.EndObject();
  return w.Take();
}

std::string QueryProfile::ChromeTrace() const {
  return obs::SpanToChromeTrace(plan);
}

std::vector<std::string> QueryAnswer::Rows(const Instance& instance,
                                           int limit) const {
  if (profile.has_value() && !profile->analyzed) {
    return SplitLines(profile->Tree());
  }
  std::vector<std::string> out;
  for (const Region& r : regions) {
    if (static_cast<int>(out.size()) >= limit) {
      out.push_back("... (" +
                    std::to_string(regions.size() - out.size()) + " more)");
      break;
    }
    std::string row = regal::ToString(r);
    if (instance.text() != nullptr) {
      row += "  \"" + instance.text()->Snippet(r.left, r.right) + "\"";
    }
    out.push_back(std::move(row));
  }
  return out;
}

/// The background checkpointer's shared state: its own mutex/cv (never the
/// catalog lock — the thread takes that only inside Checkpoint()).
struct QueryEngine::Checkpointer {
  std::mutex mu;
  std::condition_variable cv;
  bool stop = false;
  bool paused = false;
  std::thread thread;
};

QueryEngine::QueryEngine(Instance instance, std::optional<Digraph> rig)
    : instance_(std::move(instance)),
      rig_(std::move(rig)),
      result_cache_(std::make_unique<cache::ResultCache>()) {
  stats_ = StatsFromInstance(instance_);
}

QueryEngine::~QueryEngine() { StopBackgroundCheckpointer(); }

QueryEngine::QueryEngine(QueryEngine&&) = default;
QueryEngine& QueryEngine::operator=(QueryEngine&&) = default;

Result<QueryEngine> QueryEngine::FromProgramSource(const std::string& source) {
  REGAL_ASSIGN_OR_RETURN(Instance instance, ParseProgram(source));
  return QueryEngine(std::move(instance), SourceCodeRig());
}

Result<QueryEngine> QueryEngine::FromSgmlSource(const std::string& source) {
  REGAL_ASSIGN_OR_RETURN(Instance instance, ParseSgml(source));
  return QueryEngine(std::move(instance), std::nullopt);
}

Status QueryEngine::SaveSnapshot(const std::string& path, storage::Env* env,
                                 storage::SnapshotFormat format) const {
  std::shared_lock<std::shared_mutex> lock(*catalog_mu_);
  return storage::SaveSnapshotToFile(instance_, path, env, format);
}

Result<QueryEngine> QueryEngine::OpenSnapshot(const std::string& path,
                                              storage::Env* env,
                                              std::optional<Digraph> rig) {
  REGAL_ASSIGN_OR_RETURN(Instance instance,
                         storage::LoadSnapshotFromFile(path, env));
  return QueryEngine(std::move(instance), std::move(rig));
}

Status QueryEngine::ReloadSnapshot(const std::string& path,
                                   storage::Env* env) {
  // Load and index outside the lock — in-flight queries keep running on
  // the old catalog during the (potentially long) decode.
  REGAL_ASSIGN_OR_RETURN(Instance loaded,
                         storage::LoadSnapshotFromFile(path, env));
  // `loaded` was constructed by the decoder, so it carries a fresh
  // process-unique instance id: result-cache entries keyed to the old
  // (id, epoch) become unreachable the moment the swap lands, even if the
  // snapshot's contents are byte-identical to the old catalog. The stale
  // entries age out of the LRU naturally.
  std::unique_lock<std::shared_mutex> lock(*catalog_mu_);
  instance_ = std::move(loaded);
  stats_ = StatsFromInstance(instance_);
  // Views were defined against — and materialized from — the replaced
  // catalog; carrying them across would resurrect pre-reload data.
  expression_views_.clear();
  materialized_views_.clear();
  return Status::OK();
}

Result<QueryEngine> QueryEngine::OpenDurable(const std::string& dir,
                                             recovery::DurableOptions options,
                                             storage::Env* env,
                                             std::optional<Digraph> rig) {
  Instance instance;
  REGAL_ASSIGN_OR_RETURN(
      std::unique_ptr<recovery::DurableStore> store,
      recovery::DurableStore::Open(env, dir, std::move(options), &instance));
  QueryEngine engine(std::move(instance), std::move(rig));
  engine.durable_ = std::move(store);
  return engine;
}

Status QueryEngine::Apply(const recovery::Mutation& m) {
  {
    std::unique_lock<std::shared_mutex> lock(*catalog_mu_);
    if (m.kind == recovery::MutationKind::kDefineRegions &&
        instance_.Has(m.name)) {
      // Rejected before journaling: the WAL must only ever hold records
      // that apply unconditionally (that is what makes replay idempotent).
      return Status::AlreadyExists("region name '" + m.name +
                                   "' already defined");
    }
    if (durable_ != nullptr) {
      REGAL_RETURN_NOT_OK(durable_->Journal(m));
    }
    REGAL_RETURN_NOT_OK(recovery::ApplyMutation(&instance_, m));
    stats_ = StatsFromInstance(instance_);
  }
  MaybeCheckpoint();
  return Status::OK();
}

Status QueryEngine::ApplyBatch(const std::vector<recovery::Mutation>& batch) {
  if (batch.empty()) return Status::OK();
  {
    std::unique_lock<std::shared_mutex> lock(*catalog_mu_);
    std::set<std::string> defined_in_batch;
    for (const recovery::Mutation& m : batch) {
      if (m.kind != recovery::MutationKind::kDefineRegions) continue;
      if (instance_.Has(m.name) || !defined_in_batch.insert(m.name).second) {
        return Status::AlreadyExists("region name '" + m.name +
                                     "' already defined");
      }
    }
    if (durable_ != nullptr) {
      REGAL_RETURN_NOT_OK(durable_->JournalBatch(batch));
    }
    for (const recovery::Mutation& m : batch) {
      REGAL_RETURN_NOT_OK(recovery::ApplyMutation(&instance_, m));
    }
    stats_ = StatsFromInstance(instance_);
  }
  MaybeCheckpoint();
  return Status::OK();
}

Status QueryEngine::DefineRegions(const std::string& name, RegionSet regions) {
  return Apply(recovery::Mutation::DefineRegions(name, std::move(regions)));
}

Status QueryEngine::ReplaceRegions(const std::string& name,
                                   RegionSet regions) {
  return Apply(recovery::Mutation::ReplaceRegions(name, std::move(regions)));
}

Status QueryEngine::BindText(std::string text) {
  return Apply(recovery::Mutation::BindText(std::move(text)));
}

Status QueryEngine::SetSyntheticPattern(const Pattern& pattern,
                                        RegionSet regions) {
  return Apply(recovery::Mutation::SetPattern(pattern, std::move(regions)));
}

Status QueryEngine::Checkpoint() {
  if (durable_ == nullptr) {
    return Status::FailedPrecondition("engine has no durable store");
  }
  // Exclusive: the checkpoint must capture a catalog no mutation is
  // half-way through, and the store's writer swap must not race a Journal.
  std::unique_lock<std::shared_mutex> lock(*catalog_mu_);
  return durable_->Checkpoint(instance_);
}

void QueryEngine::MaybeCheckpoint() {
  if (durable_ == nullptr || !durable_->ShouldCheckpoint()) return;
  if (checkpointer_ != nullptr) {
    checkpointer_->cv.notify_one();
    return;
  }
  // Inline and best-effort: a failed checkpoint leaves the WAL intact, so
  // nothing acknowledged is at risk — the next mutation retries, and the
  // failure is visible in regal_recovery_checkpoints_total{outcome=error}.
  (void)Checkpoint();
}

Status QueryEngine::StartBackgroundCheckpointer(double interval_ms) {
  if (durable_ == nullptr) {
    return Status::FailedPrecondition("engine has no durable store");
  }
  if (checkpointer_ != nullptr) {
    return Status::AlreadyExists("background checkpointer already running");
  }
  checkpointer_ = std::make_unique<Checkpointer>();
  Checkpointer* state = checkpointer_.get();
  state->thread = std::thread([this, state, interval_ms] {
    std::unique_lock<std::mutex> lock(state->mu);
    while (!state->stop) {
      state->cv.wait_for(
          lock, std::chrono::duration<double, std::milli>(interval_ms));
      if (state->stop) break;
      // ShouldCheckpoint reads atomics only; the catalog lock is taken
      // inside Checkpoint(), never while holding state->mu's cv wait.
      // Paused (brownout): keep waking, skip the IO; the WAL still holds
      // every acknowledged mutation, so nothing is at risk while paused.
      if (!state->paused && durable_->ShouldCheckpoint()) {
        lock.unlock();
        (void)Checkpoint();
        lock.lock();
      }
    }
  });
  return Status::OK();
}

void QueryEngine::SetCheckpointerPaused(bool paused) {
  if (checkpointer_ == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(checkpointer_->mu);
    checkpointer_->paused = paused;
  }
  checkpointer_->cv.notify_all();
}

bool QueryEngine::checkpointer_paused() const {
  if (checkpointer_ == nullptr) return false;
  std::lock_guard<std::mutex> lock(checkpointer_->mu);
  return checkpointer_->paused;
}

void QueryEngine::StopBackgroundCheckpointer() {
  if (checkpointer_ == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(checkpointer_->mu);
    checkpointer_->stop = true;
  }
  checkpointer_->cv.notify_all();
  if (checkpointer_->thread.joinable()) checkpointer_->thread.join();
  checkpointer_.reset();
}

Status QueryEngine::Validate() const {
  std::shared_lock<std::shared_mutex> lock(*catalog_mu_);
  REGAL_RETURN_NOT_OK(instance_.Validate());
  if (rig_.has_value()) {
    REGAL_RETURN_NOT_OK(InstanceSatisfiesRig(instance_, *rig_));
  }
  return Status::OK();
}

Result<QueryAnswer> QueryEngine::Run(const std::string& query, bool optimize) {
  return Run(query, limits_, optimize);
}

Result<QueryAnswer> QueryEngine::Run(const std::string& query,
                                     const safety::QueryLimits& limits,
                                     bool optimize) {
  Result<QueryStatement> statement = ParseStatement(query);
  if (!statement.ok()) {
    // The lexer/parser admission caps (token count, nesting depth) report
    // ResourceExhausted; count those rejections with the admission-control
    // ones so all refused work is visible in one place.
    if (statement.status().code() == StatusCode::kResourceExhausted) {
      obs::Registry::Default()
          .GetCounter("regal_safety_queries_rejected_total",
                      {{"reason", "parse"}})
          ->Increment();
    }
    return statement.status();
  }
  switch (statement->verb) {
    case QueryVerb::kExplain:
      return ExplainExpr(statement->expr, optimize);
    case QueryVerb::kExplainAnalyze:
      return RunExprWithLimits(statement->expr, limits, optimize,
                               /*profile=*/true);
    case QueryVerb::kRun:
      break;
  }
  return RunExprWithLimits(statement->expr, limits, optimize,
                           /*profile=*/false);
}

bool QueryEngine::IsCacheResident(const std::string& query) {
  Result<QueryStatement> statement = ParseStatement(query);
  if (!statement.ok()) return false;
  // explain / explain analyze always run machinery; only plain `run`
  // statements can be answered from warm state.
  if (statement->verb != QueryVerb::kRun) return false;
  std::shared_lock<std::shared_mutex> lock(*catalog_mu_);
  ExprPtr resolved = ResolveViews(statement->expr);
  // Mirror the execution pipeline: the evaluator caches nodes of the
  // *optimized* expression, so residency must be probed against the same
  // shape a real run would evaluate.
  OptimizerOptions options;
  options.stats = stats_;
  if (rig_.has_value()) options.rig = &*rig_;
  ExprPtr executed = Optimize(resolved, options).expr;
  // A raw name scan is borrowed from the index — always warm, never in
  // the result cache (the evaluator excludes kName on purpose).
  if (executed->kind() == OpKind::kName) return true;
  if (!result_cache_enabled_ || result_cache_ == nullptr) return false;
  ExprCanonicalizer canonicalizer;
  ExprPtr canonical = canonicalizer.Canonical(executed);
  cache::ResultCache::Key key{instance_.id(), instance_.epoch(),
                              canonicalizer.Hash(executed)};
  return result_cache_->Lookup(key, canonical, nullptr) != nullptr;
}

Result<QueryAnswer> QueryEngine::RunExpr(const ExprPtr& expr, bool optimize,
                                         bool profile) {
  return RunExprWithLimits(expr, limits_, optimize, profile);
}

Result<QueryAnswer> QueryEngine::RunExprWithLimits(
    const ExprPtr& expr, const safety::QueryLimits& limits, bool optimize,
    bool profile) {
  // Shared with every other in-flight query; excluded against Apply /
  // ReloadSnapshot / Checkpoint, so the whole run sees one catalog.
  std::shared_lock<std::shared_mutex> catalog_lock(*catalog_mu_);
  ExprPtr resolved = ResolveViews(expr);
  obs::Registry& registry = obs::Registry::Default();
  obs::FlightRecorder* recorder =
      telemetry_enabled_ ? flight_recorder() : nullptr;
  const uint64_t query_id =
      recorder != nullptr ? recorder->NextQueryId() : 0;
  // Sampling is decided before execution so a sampled query can collect a
  // live trace for /tracez (a post-hoc decision could only rebuild an
  // estimate skeleton).
  const bool sampled = recorder != nullptr && recorder->ShouldSample(query_id);
  // Pre-execution rejections (unknown names, admission control) also reach
  // the flight recorder — they are exactly the queries operators get asked
  // about. Nothing ran, so the plan is an estimate-only skeleton.
  auto record_rejection = [&](const Status& status) {
    if (recorder == nullptr) return;
    obs::QueryRecord record;
    record.query_id = query_id;
    record.ok = false;
    record.status = status.ToString();
    record.status_code = StatusCodeLabel(status.code());
    record.sampled = sampled;
    record.query = resolved->ToString();
    record.plan = PlanFromExpr(resolved, stats_);
    recorder->Record(std::move(record));
  };
  Status names_ok = CheckNames(instance_, materialized_views_, resolved);
  if (!names_ok.ok()) {
    record_rejection(names_ok);
    return names_ok;
  }
  const bool governed = limits.Any();
  if (governed) {
    Status admitted = safety::AdmitExpr(resolved, limits);
    if (!admitted.ok()) {
      registry
          .GetCounter("regal_safety_queries_rejected_total",
                      {{"reason", "complexity"}})
          ->Increment();
      record_rejection(admitted);
      return admitted;
    }
    registry.GetCounter("regal_safety_queries_admitted_total")->Increment();
  }
  QueryAnswer answer;
  answer.parsed = expr;
  answer.executed = resolved;
  if (optimize) {
    OptimizerOptions options;
    options.stats = stats_;
    if (rig_.has_value()) options.rig = &*rig_;
    OptimizeOutcome outcome = Optimize(resolved, options);
    answer.executed = outcome.expr;
    answer.rewrite_rules_applied = outcome.rules_applied;
    answer.rewrites = std::move(outcome.rewrites);
  }
  std::optional<obs::Tracer> tracer;
  if (profile || sampled) tracer.emplace();
  std::optional<safety::QueryContext> context;
  if (governed) context.emplace(limits);
  bool degraded = false;
  std::vector<std::string> fallbacks;
  // Per-query, not the global metrics counter: concurrent queries must not
  // attribute each other's kernel fallbacks to this profile.
  std::atomic<int64_t> kernel_fallbacks{0};
  cache::CacheQueryStats cache_stats;
  Status eval_status = Status::OK();
  obs::Gauge* inflight = registry.GetGauge("regal_engine_inflight_queries");
  inflight->Add(1);
  {
    ScopedTimer timed(&answer.elapsed_ms);
    EvalOptions eval_options;
    eval_options.bindings = &materialized_views_;
    eval_options.kernel_fallbacks = &kernel_fallbacks;
    if (result_cache_enabled_) {
      eval_options.result_cache = result_cache_.get();
      eval_options.cache_stats = &cache_stats;
    }
    if (tracer.has_value()) eval_options.tracer = &*tracer;
    if (context.has_value()) eval_options.context = &*context;
    if (parallel_enabled_ &&
        EstimateCost(answer.executed, stats_).cost >=
            parallel_cost_threshold_) {
      exec::ThreadPool* pool = parallel_policy_.pool != nullptr
                                   ? parallel_policy_.pool
                                   : &exec::ThreadPool::Default();
      if (pool->Saturated()) {
        // Graceful degradation: an overloaded pool means queued parallel
        // work would only deepen the backlog, so this query runs on the
        // (bit-identical) sequential path instead of failing or stalling.
        degraded = true;
        fallbacks.push_back("pool saturated: sequential evaluation");
        registry
            .GetCounter("regal_safety_queries_degraded_total",
                        {{"reason", "pool_saturated"}})
            ->Increment();
      } else {
        eval_options.parallel = &parallel_policy_;
      }
    }
    Evaluator evaluator(&instance_, eval_options);
    Result<RegionSet> result = evaluator.Evaluate(answer.executed);
    answer.eval_stats = evaluator.stats();
    if (result.ok()) {
      answer.regions = std::move(result).value();
    } else {
      eval_status = result.status();
    }
  }
  inflight->Add(-1);
  const int64_t degraded_kernels =
      kernel_fallbacks.load(std::memory_order_relaxed);
  if (degraded_kernels > 0) {
    degraded = true;
    fallbacks.push_back("kernel fallback x" +
                        std::to_string(degraded_kernels) +
                        ": sequential operators");
  }
  if (recorder != nullptr) {
    obs::QueryRecord record;
    record.query_id = query_id;
    record.ok = eval_status.ok();
    record.elapsed_ms = answer.elapsed_ms;
    record.rows_out = static_cast<int64_t>(answer.regions.size());
    record.sampled = sampled;
    if (!eval_status.ok()) {
      record.status = eval_status.ToString();
      record.status_code = StatusCodeLabel(eval_status.code());
    }
    // Strings and plan trees are built only for records the keep policy
    // will accept, so the common skip path stays allocation-free.
    if (recorder->WouldKeep(record.ok, record.elapsed_ms, record.sampled)) {
      record.query = answer.executed->ToString();
      if (tracer.has_value()) {
        record.plan = tracer->Build();
        AttachEstimates(&record.plan, answer.executed, stats_);
        record.traced = true;
      } else {
        // A slow/errored query that was neither profiled nor sampled has no
        // trace; /tracez still gets the plan shape with estimates, stamped
        // with the whole-query outcome at the root.
        record.plan = PlanFromExpr(answer.executed, stats_);
        record.plan.rows_out = static_cast<int64_t>(answer.regions.size());
        record.plan.dur_us = answer.elapsed_ms * 1000.0;
      }
    }
    recorder->Record(std::move(record));
  }
  if (!eval_status.ok()) {
    const char* reason = nullptr;
    switch (eval_status.code()) {
      case StatusCode::kCancelled:
        reason = "cancelled";
        break;
      case StatusCode::kDeadlineExceeded:
        reason = "deadline_exceeded";
        break;
      case StatusCode::kResourceExhausted:
        reason = "over_memory";
        break;
      default:
        break;
    }
    if (reason != nullptr) {
      registry
          .GetCounter("regal_safety_queries_stopped_total",
                      {{"reason", reason}})
          ->Increment();
    }
    return eval_status;
  }
  if (profile) {
    QueryProfile query_profile;
    query_profile.plan = tracer->Build();
    AttachEstimates(&query_profile.plan, answer.executed, stats_);
    query_profile.counters = tracer->counters();
    query_profile.total_ms = answer.elapsed_ms;
    query_profile.analyzed = true;
    query_profile.limits_enforced = governed;
    query_profile.degraded = degraded;
    query_profile.fallbacks = std::move(fallbacks);
    if (context.has_value()) {
      query_profile.peak_memory_bytes = context->peak_memory_bytes();
    }
    query_profile.cache_enabled = result_cache_enabled_;
    query_profile.cache = cache_stats;
    if (result_cache_enabled_) {
      query_profile.cache_bytes = result_cache_->bytes();
    }
    answer.profile = std::move(query_profile);
  }
  if (context.has_value()) {
    registry
        .GetHistogram("regal_query_peak_memory_bytes", {},
                      obs::Registry::DefaultSizeBytesBuckets())
        ->Observe(static_cast<double>(context->peak_memory_bytes()));
  }
  registry.GetCounter("regal_queries_total",
                      {{"verb", profile ? "explain_analyze" : "run"}})
      ->Increment();
  registry.GetHistogram("regal_query_latency_ms")->Observe(answer.elapsed_ms);
  return answer;
}

Result<QueryAnswer> QueryEngine::ExplainExpr(const ExprPtr& expr,
                                             bool optimize) {
  std::shared_lock<std::shared_mutex> catalog_lock(*catalog_mu_);
  ExprPtr resolved = ResolveViews(expr);
  REGAL_RETURN_NOT_OK(CheckNames(instance_, materialized_views_, resolved));
  QueryAnswer answer;
  answer.parsed = expr;
  answer.executed = resolved;
  if (optimize) {
    OptimizerOptions options;
    options.stats = stats_;
    if (rig_.has_value()) options.rig = &*rig_;
    OptimizeOutcome outcome = Optimize(resolved, options);
    answer.executed = outcome.expr;
    answer.rewrite_rules_applied = outcome.rules_applied;
    answer.rewrites = std::move(outcome.rewrites);
  }
  QueryProfile query_profile;
  query_profile.plan = PlanFromExpr(answer.executed, stats_);
  query_profile.analyzed = false;
  answer.profile = std::move(query_profile);
  obs::Registry::Default()
      .GetCounter("regal_queries_total", {{"verb", "explain"}})
      ->Increment();
  return answer;
}

Status QueryEngine::EnableAdminServer(admin::AdminOptions options) {
  if (admin_server_ != nullptr) {
    return Status::AlreadyExists("admin server already running on port " +
                                 std::to_string(admin_server_->port()));
  }
  if (options.recorder == nullptr) options.recorder = flight_recorder();
  REGAL_ASSIGN_OR_RETURN(std::unique_ptr<admin::AdminServer> server,
                         admin::AdminServer::Start(std::move(options)));
  RegisterStatusSections(server.get());
  RegisterCpuStatusSection(server.get());
  admin_server_ = std::move(server);
  return Status::OK();
}

void QueryEngine::RegisterCpuStatusSection(admin::AdminServer* server) {
  server->AddStatusSection("cpu", [] {
    admin::StatusRows rows;
    const util::CpuFeatures& f = util::CpuInfo();
    rows.emplace_back("sse42", f.sse42 ? "true" : "false");
    rows.emplace_back("avx2", f.avx2 ? "true" : "false");
    rows.emplace_back("kernel_isa", simd::ActiveKernels().name);
    const char* simd_override = std::getenv("REGAL_SIMD");
    rows.emplace_back("simd_override",
                      simd_override != nullptr ? simd_override : "(none)");
    return rows;
  });
}

void QueryEngine::RegisterStatusSections(admin::AdminServer* server,
                                         const std::string& prefix) {
  // Sections run on the server thread. Catalog-derived rows take the
  // catalog lock shared (a scrape must not observe a half-swapped reload);
  // the rest read internally synchronized state (cache, pool, recorder).
  server->AddStatusSection(prefix + "catalog", [this] {
    admin::StatusRows rows;
    std::shared_lock<std::shared_mutex> lock(*catalog_mu_);
    rows.emplace_back("instance_id", std::to_string(instance_.id()));
    rows.emplace_back("epoch", std::to_string(instance_.epoch()));
    rows.emplace_back("region_names", std::to_string(instance_.names().size()));
    rows.emplace_back("regions", std::to_string(instance_.NumRegions()));
    rows.emplace_back("text_bytes",
                      std::to_string(instance_.text() != nullptr
                                         ? instance_.text()->size()
                                         : 0));
    rows.emplace_back("views",
                      std::to_string(expression_views_.size() +
                                     materialized_views_.size()));
    return rows;
  });
  server->AddStatusSection(prefix + "cache", [this] {
    admin::StatusRows rows;
    rows.emplace_back("enabled", result_cache_enabled_ ? "true" : "false");
    rows.emplace_back("bytes", std::to_string(result_cache_->bytes()));
    rows.emplace_back("entries", std::to_string(result_cache_->entries()));
    rows.emplace_back("max_bytes", std::to_string(result_cache_->max_bytes()));
    return rows;
  });
  server->AddStatusSection(prefix + "exec", [this] {
    admin::StatusRows rows;
    exec::ThreadPool* pool = parallel_policy_.pool != nullptr
                                 ? parallel_policy_.pool
                                 : &exec::ThreadPool::Default();
    rows.emplace_back("parallel_enabled",
                      parallel_enabled_ ? "true" : "false");
    rows.emplace_back("cost_threshold",
                      std::to_string(parallel_cost_threshold_));
    rows.emplace_back("threads", std::to_string(pool->num_threads()));
    rows.emplace_back("queue_depth", std::to_string(pool->ApproxQueueDepth()));
    return rows;
  });
  server->AddStatusSection(prefix + "telemetry", [this] {
    admin::StatusRows rows;
    obs::FlightRecorder* recorder = flight_recorder();
    rows.emplace_back("enabled", telemetry_enabled_ ? "true" : "false");
    rows.emplace_back("recorder_entries", std::to_string(recorder->entries()));
    rows.emplace_back("recorder_capacity",
                      std::to_string(recorder->capacity()));
    rows.emplace_back("last_query_id",
                      std::to_string(recorder->last_query_id()));
    rows.emplace_back("slow_threshold_ms",
                      std::to_string(recorder->slow_threshold_ms()));
    rows.emplace_back("sample_period",
                      std::to_string(recorder->sample_period()));
    return rows;
  });
  if (durable_ != nullptr) {
    server->AddStatusSection(prefix + "recovery", [this] {
      admin::StatusRows rows;
      std::shared_lock<std::shared_mutex> lock(*catalog_mu_);
      const recovery::RecoveryHealth& health = durable_->health();
      rows.emplace_back("degraded", durable_->degraded() ? "true" : "false");
      rows.emplace_back("checkpoint_lsn",
                        std::to_string(durable_->checkpoint_lsn()));
      rows.emplace_back("last_lsn", std::to_string(durable_->last_lsn()));
      rows.emplace_back("records_since_checkpoint",
                        std::to_string(durable_->records_since_checkpoint()));
      rows.emplace_back("replayed_records",
                        std::to_string(health.replayed_records));
      rows.emplace_back("torn_tail_bytes",
                        std::to_string(health.torn_tail_bytes));
      rows.emplace_back("salvaged_sections",
                        std::to_string(health.salvage.sections_kept));
      rows.emplace_back("dropped_sections",
                        std::to_string(health.salvage.sections_dropped));
      rows.emplace_back("quarantined",
                        health.quarantined.empty() ? "(none)"
                                                   : health.quarantined.back());
      if (!health.notes.empty()) {
        rows.emplace_back("last_note", health.notes.back());
      }
      return rows;
    });
  }
}

void QueryEngine::DisableAdminServer() { admin_server_.reset(); }

Status QueryEngine::CheckViewName(const std::string& name) const {
  if (instance_.Has(name)) {
    return Status::AlreadyExists("'" + name + "' is a region name");
  }
  if (expression_views_.count(name) > 0 ||
      materialized_views_.count(name) > 0) {
    return Status::AlreadyExists("view '" + name + "' already defined");
  }
  return Status::OK();
}

ExprPtr QueryEngine::ResolveViews(const ExprPtr& expr) const {
  if (expr->kind() == OpKind::kName) {
    auto it = expression_views_.find(expr->name());
    return it == expression_views_.end() ? expr : it->second;
  }
  std::vector<ExprPtr> children;
  bool changed = false;
  for (const ExprPtr& c : expr->children()) {
    ExprPtr nc = ResolveViews(c);
    changed |= (nc.get() != c.get());
    children.push_back(std::move(nc));
  }
  if (!changed) return expr;
  switch (expr->kind()) {
    case OpKind::kSelect:
      return Expr::Select(expr->pattern(), children[0]);
    case OpKind::kBothIncluded:
      return Expr::BothIncluded(children[0], children[1], children[2]);
    default:
      return Expr::Binary(expr->kind(), children[0], children[1]);
  }
}

Status QueryEngine::DefineView(const std::string& name,
                               const std::string& query) {
  std::unique_lock<std::shared_mutex> lock(*catalog_mu_);
  REGAL_RETURN_NOT_OK(CheckViewName(name));
  REGAL_ASSIGN_OR_RETURN(ExprPtr expr, ParseQuery(query));
  // Splice existing views now, so later definitions cannot create cycles.
  ExprPtr resolved = ResolveViews(expr);
  for (const std::string& used : resolved->NamesUsed()) {
    if (!instance_.Has(used) && materialized_views_.count(used) == 0) {
      return Status::NotFound("view references unknown name '" + used + "'");
    }
  }
  expression_views_[name] = std::move(resolved);
  return Status::OK();
}

Status QueryEngine::DefineSpanView(const std::string& name,
                                   const std::string& starts_query,
                                   const std::string& ends_query) {
  {
    std::shared_lock<std::shared_mutex> lock(*catalog_mu_);
    REGAL_RETURN_NOT_OK(CheckViewName(name));
  }
  // Run() takes the catalog lock shared itself, so it must not be held
  // here (shared_mutex is not recursive).
  REGAL_ASSIGN_OR_RETURN(QueryAnswer starts, Run(starts_query));
  REGAL_ASSIGN_OR_RETURN(QueryAnswer ends, Run(ends_query));
  RegionSet spans = SpanJoin(starts.regions, ends.regions);
  std::unique_lock<std::shared_mutex> lock(*catalog_mu_);
  // Re-check under the write lock: the name may have appeared while the
  // defining queries ran.
  REGAL_RETURN_NOT_OK(CheckViewName(name));
  stats_.cardinality[name] = static_cast<double>(spans.size());
  materialized_views_[name] = std::move(spans);
  return Status::OK();
}

Status QueryEngine::DefineWindowView(const std::string& name,
                                     const Pattern& pattern, Offset before,
                                     Offset after) {
  std::unique_lock<std::shared_mutex> lock(*catalog_mu_);
  REGAL_RETURN_NOT_OK(CheckViewName(name));
  if (instance_.text() == nullptr || instance_.word_index() == nullptr) {
    return Status::FailedPrecondition(
        "window views need a text-backed catalog");
  }
  RegionSet windows =
      Windows(instance_.word_index()->Matches(pattern), before, after,
              instance_.text()->size());
  stats_.cardinality[name] = static_cast<double>(windows.size());
  materialized_views_[name] = std::move(windows);
  return Status::OK();
}

}  // namespace regal
