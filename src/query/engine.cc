#include "query/engine.h"

#include <atomic>

#include "core/construct.h"
#include "doc/sgml.h"
#include "doc/srccode.h"
#include "exec/thread_pool.h"
#include "obs/export.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "opt/optimizer.h"
#include "query/parser.h"
#include "rig/rig.h"
#include "util/timer.h"

namespace regal {

namespace {

// Mirrors the evaluator's span naming to build the estimate-only plan for
// plain `explain`, which never constructs a Tracer.
obs::Span PlanFromExpr(const ExprPtr& expr, const CatalogStats& stats) {
  obs::Span span;
  span.name = ExprSpanName(*expr);
  span.detail = ExprSpanDetail(*expr);
  span.est_rows = EstimateCost(expr, stats).cardinality;
  for (const ExprPtr& child : expr->children()) {
    span.children.push_back(PlanFromExpr(child, stats));
  }
  return span;
}

// Walks a traced span tree and the executed expression in lockstep, attaching
// the cost model's cardinality estimate to every node it can line up.
// Memoized mentions are childless, so the lockstep stops there.
void AttachEstimates(obs::Span* span, const ExprPtr& expr,
                     const CatalogStats& stats) {
  span->est_rows = EstimateCost(expr, stats).cardinality;
  if (span->children.size() != expr->children().size()) return;
  for (size_t i = 0; i < span->children.size(); ++i) {
    AttachEstimates(&span->children[i], expr->children()[i], stats);
  }
}

Status CheckNames(const Instance& instance,
                  const std::map<std::string, RegionSet>& materialized,
                  const ExprPtr& resolved) {
  for (const std::string& name : resolved->NamesUsed()) {
    if (!instance.Has(name) && materialized.count(name) == 0) {
      return Status::NotFound("unknown region name '" + name + "'");
    }
  }
  return Status::OK();
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

}  // namespace

std::string QueryProfile::Tree() const { return obs::FormatSpanTree(plan); }

std::string QueryProfile::Json() const {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("analyzed").Bool(analyzed);
  w.Key("total_ms").Double(total_ms);
  w.Key("governance").BeginObject();
  w.Key("limits_enforced").Bool(limits_enforced);
  w.Key("degraded").Bool(degraded);
  w.Key("fallbacks").BeginArray();
  for (const std::string& fallback : fallbacks) w.String(fallback);
  w.EndArray();
  w.Key("peak_memory_bytes").Int(peak_memory_bytes);
  w.EndObject();
  w.Key("cache").BeginObject();
  w.Key("enabled").Bool(cache_enabled);
  w.Key("hits").Int(cache.hits);
  w.Key("misses").Int(cache.misses);
  w.Key("inserts").Int(cache.inserts);
  w.Key("evictions").Int(cache.evictions);
  w.Key("insert_failures").Int(cache.insert_failures);
  w.Key("bytes").Int(cache_bytes);
  w.EndObject();
  w.Key("plan");
  obs::WriteSpanJson(plan, &w);
  w.EndObject();
  return w.Take();
}

std::string QueryProfile::ChromeTrace() const {
  return obs::SpanToChromeTrace(plan);
}

std::vector<std::string> QueryAnswer::Rows(const Instance& instance,
                                           int limit) const {
  if (profile.has_value() && !profile->analyzed) {
    return SplitLines(profile->Tree());
  }
  std::vector<std::string> out;
  for (const Region& r : regions) {
    if (static_cast<int>(out.size()) >= limit) {
      out.push_back("... (" +
                    std::to_string(regions.size() - out.size()) + " more)");
      break;
    }
    std::string row = regal::ToString(r);
    if (instance.text() != nullptr) {
      row += "  \"" + instance.text()->Snippet(r.left, r.right) + "\"";
    }
    out.push_back(std::move(row));
  }
  return out;
}

QueryEngine::QueryEngine(Instance instance, std::optional<Digraph> rig)
    : instance_(std::move(instance)),
      rig_(std::move(rig)),
      result_cache_(std::make_unique<cache::ResultCache>()) {
  stats_ = StatsFromInstance(instance_);
}

Result<QueryEngine> QueryEngine::FromProgramSource(const std::string& source) {
  REGAL_ASSIGN_OR_RETURN(Instance instance, ParseProgram(source));
  return QueryEngine(std::move(instance), SourceCodeRig());
}

Result<QueryEngine> QueryEngine::FromSgmlSource(const std::string& source) {
  REGAL_ASSIGN_OR_RETURN(Instance instance, ParseSgml(source));
  return QueryEngine(std::move(instance), std::nullopt);
}

Status QueryEngine::SaveSnapshot(const std::string& path, storage::Env* env,
                                 storage::SnapshotFormat format) const {
  return storage::SaveSnapshotToFile(instance_, path, env, format);
}

Result<QueryEngine> QueryEngine::OpenSnapshot(const std::string& path,
                                              storage::Env* env,
                                              std::optional<Digraph> rig) {
  REGAL_ASSIGN_OR_RETURN(Instance instance,
                         storage::LoadSnapshotFromFile(path, env));
  return QueryEngine(std::move(instance), std::move(rig));
}

Status QueryEngine::ReloadSnapshot(const std::string& path,
                                   storage::Env* env) {
  REGAL_ASSIGN_OR_RETURN(Instance loaded,
                         storage::LoadSnapshotFromFile(path, env));
  // `loaded` was constructed by the decoder, so it carries a fresh
  // process-unique instance id: result-cache entries keyed to the old
  // (id, epoch) become unreachable the moment the swap lands, even if the
  // snapshot's contents are byte-identical to the old catalog. The stale
  // entries age out of the LRU naturally.
  instance_ = std::move(loaded);
  stats_ = StatsFromInstance(instance_);
  // Views were defined against — and materialized from — the replaced
  // catalog; carrying them across would resurrect pre-reload data.
  expression_views_.clear();
  materialized_views_.clear();
  return Status::OK();
}

Status QueryEngine::Validate() const {
  REGAL_RETURN_NOT_OK(instance_.Validate());
  if (rig_.has_value()) {
    REGAL_RETURN_NOT_OK(InstanceSatisfiesRig(instance_, *rig_));
  }
  return Status::OK();
}

Result<QueryAnswer> QueryEngine::Run(const std::string& query, bool optimize) {
  return Run(query, limits_, optimize);
}

Result<QueryAnswer> QueryEngine::Run(const std::string& query,
                                     const safety::QueryLimits& limits,
                                     bool optimize) {
  Result<QueryStatement> statement = ParseStatement(query);
  if (!statement.ok()) {
    // The lexer/parser admission caps (token count, nesting depth) report
    // ResourceExhausted; count those rejections with the admission-control
    // ones so all refused work is visible in one place.
    if (statement.status().code() == StatusCode::kResourceExhausted) {
      obs::Registry::Default()
          .GetCounter("regal_safety_queries_rejected_total",
                      {{"reason", "parse"}})
          ->Increment();
    }
    return statement.status();
  }
  switch (statement->verb) {
    case QueryVerb::kExplain:
      return ExplainExpr(statement->expr, optimize);
    case QueryVerb::kExplainAnalyze:
      return RunExprWithLimits(statement->expr, limits, optimize,
                               /*profile=*/true);
    case QueryVerb::kRun:
      break;
  }
  return RunExprWithLimits(statement->expr, limits, optimize,
                           /*profile=*/false);
}

Result<QueryAnswer> QueryEngine::RunExpr(const ExprPtr& expr, bool optimize,
                                         bool profile) {
  return RunExprWithLimits(expr, limits_, optimize, profile);
}

Result<QueryAnswer> QueryEngine::RunExprWithLimits(
    const ExprPtr& expr, const safety::QueryLimits& limits, bool optimize,
    bool profile) {
  ExprPtr resolved = ResolveViews(expr);
  REGAL_RETURN_NOT_OK(CheckNames(instance_, materialized_views_, resolved));
  obs::Registry& registry = obs::Registry::Default();
  const bool governed = limits.Any();
  if (governed) {
    Status admitted = safety::AdmitExpr(resolved, limits);
    if (!admitted.ok()) {
      registry
          .GetCounter("regal_safety_queries_rejected_total",
                      {{"reason", "complexity"}})
          ->Increment();
      return admitted;
    }
    registry.GetCounter("regal_safety_queries_admitted_total")->Increment();
  }
  QueryAnswer answer;
  answer.parsed = expr;
  answer.executed = resolved;
  if (optimize) {
    OptimizerOptions options;
    options.stats = stats_;
    if (rig_.has_value()) options.rig = &*rig_;
    OptimizeOutcome outcome = Optimize(resolved, options);
    answer.executed = outcome.expr;
    answer.rewrite_rules_applied = outcome.rules_applied;
    answer.rewrites = std::move(outcome.rewrites);
  }
  std::optional<obs::Tracer> tracer;
  if (profile) tracer.emplace();
  std::optional<safety::QueryContext> context;
  if (governed) context.emplace(limits);
  bool degraded = false;
  std::vector<std::string> fallbacks;
  // Per-query, not the global metrics counter: concurrent queries must not
  // attribute each other's kernel fallbacks to this profile.
  std::atomic<int64_t> kernel_fallbacks{0};
  cache::CacheQueryStats cache_stats;
  Status eval_status = Status::OK();
  {
    ScopedTimer timed(&answer.elapsed_ms);
    EvalOptions eval_options;
    eval_options.bindings = &materialized_views_;
    eval_options.kernel_fallbacks = &kernel_fallbacks;
    if (result_cache_enabled_) {
      eval_options.result_cache = result_cache_.get();
      eval_options.cache_stats = &cache_stats;
    }
    if (profile) eval_options.tracer = &*tracer;
    if (context.has_value()) eval_options.context = &*context;
    if (parallel_enabled_ &&
        EstimateCost(answer.executed, stats_).cost >=
            parallel_cost_threshold_) {
      exec::ThreadPool* pool = parallel_policy_.pool != nullptr
                                   ? parallel_policy_.pool
                                   : &exec::ThreadPool::Default();
      if (pool->Saturated()) {
        // Graceful degradation: an overloaded pool means queued parallel
        // work would only deepen the backlog, so this query runs on the
        // (bit-identical) sequential path instead of failing or stalling.
        degraded = true;
        fallbacks.push_back("pool saturated: sequential evaluation");
        registry
            .GetCounter("regal_safety_queries_degraded_total",
                        {{"reason", "pool_saturated"}})
            ->Increment();
      } else {
        eval_options.parallel = &parallel_policy_;
      }
    }
    Evaluator evaluator(&instance_, eval_options);
    Result<RegionSet> result = evaluator.Evaluate(answer.executed);
    answer.eval_stats = evaluator.stats();
    if (result.ok()) {
      answer.regions = std::move(result).value();
    } else {
      eval_status = result.status();
    }
  }
  const int64_t degraded_kernels =
      kernel_fallbacks.load(std::memory_order_relaxed);
  if (degraded_kernels > 0) {
    degraded = true;
    fallbacks.push_back("kernel fallback x" +
                        std::to_string(degraded_kernels) +
                        ": sequential operators");
  }
  if (!eval_status.ok()) {
    const char* reason = nullptr;
    switch (eval_status.code()) {
      case StatusCode::kCancelled:
        reason = "cancelled";
        break;
      case StatusCode::kDeadlineExceeded:
        reason = "deadline_exceeded";
        break;
      case StatusCode::kResourceExhausted:
        reason = "over_memory";
        break;
      default:
        break;
    }
    if (reason != nullptr) {
      registry
          .GetCounter("regal_safety_queries_stopped_total",
                      {{"reason", reason}})
          ->Increment();
    }
    return eval_status;
  }
  if (profile) {
    QueryProfile query_profile;
    query_profile.plan = tracer->Build();
    AttachEstimates(&query_profile.plan, answer.executed, stats_);
    query_profile.counters = tracer->counters();
    query_profile.total_ms = answer.elapsed_ms;
    query_profile.analyzed = true;
    query_profile.limits_enforced = governed;
    query_profile.degraded = degraded;
    query_profile.fallbacks = std::move(fallbacks);
    if (context.has_value()) {
      query_profile.peak_memory_bytes = context->peak_memory_bytes();
    }
    query_profile.cache_enabled = result_cache_enabled_;
    query_profile.cache = cache_stats;
    if (result_cache_enabled_) {
      query_profile.cache_bytes = result_cache_->bytes();
    }
    answer.profile = std::move(query_profile);
  }
  if (context.has_value()) {
    registry
        .GetHistogram("regal_query_peak_memory_bytes", {},
                      obs::Registry::DefaultSizeBytesBuckets())
        ->Observe(static_cast<double>(context->peak_memory_bytes()));
  }
  registry.GetCounter("regal_queries_total",
                      {{"verb", profile ? "explain_analyze" : "run"}})
      ->Increment();
  registry.GetHistogram("regal_query_latency_ms")->Observe(answer.elapsed_ms);
  return answer;
}

Result<QueryAnswer> QueryEngine::ExplainExpr(const ExprPtr& expr,
                                             bool optimize) {
  ExprPtr resolved = ResolveViews(expr);
  REGAL_RETURN_NOT_OK(CheckNames(instance_, materialized_views_, resolved));
  QueryAnswer answer;
  answer.parsed = expr;
  answer.executed = resolved;
  if (optimize) {
    OptimizerOptions options;
    options.stats = stats_;
    if (rig_.has_value()) options.rig = &*rig_;
    OptimizeOutcome outcome = Optimize(resolved, options);
    answer.executed = outcome.expr;
    answer.rewrite_rules_applied = outcome.rules_applied;
    answer.rewrites = std::move(outcome.rewrites);
  }
  QueryProfile query_profile;
  query_profile.plan = PlanFromExpr(answer.executed, stats_);
  query_profile.analyzed = false;
  answer.profile = std::move(query_profile);
  obs::Registry::Default()
      .GetCounter("regal_queries_total", {{"verb", "explain"}})
      ->Increment();
  return answer;
}

Status QueryEngine::CheckViewName(const std::string& name) const {
  if (instance_.Has(name)) {
    return Status::AlreadyExists("'" + name + "' is a region name");
  }
  if (expression_views_.count(name) > 0 ||
      materialized_views_.count(name) > 0) {
    return Status::AlreadyExists("view '" + name + "' already defined");
  }
  return Status::OK();
}

ExprPtr QueryEngine::ResolveViews(const ExprPtr& expr) const {
  if (expr->kind() == OpKind::kName) {
    auto it = expression_views_.find(expr->name());
    return it == expression_views_.end() ? expr : it->second;
  }
  std::vector<ExprPtr> children;
  bool changed = false;
  for (const ExprPtr& c : expr->children()) {
    ExprPtr nc = ResolveViews(c);
    changed |= (nc.get() != c.get());
    children.push_back(std::move(nc));
  }
  if (!changed) return expr;
  switch (expr->kind()) {
    case OpKind::kSelect:
      return Expr::Select(expr->pattern(), children[0]);
    case OpKind::kBothIncluded:
      return Expr::BothIncluded(children[0], children[1], children[2]);
    default:
      return Expr::Binary(expr->kind(), children[0], children[1]);
  }
}

Status QueryEngine::DefineView(const std::string& name,
                               const std::string& query) {
  REGAL_RETURN_NOT_OK(CheckViewName(name));
  REGAL_ASSIGN_OR_RETURN(ExprPtr expr, ParseQuery(query));
  // Splice existing views now, so later definitions cannot create cycles.
  ExprPtr resolved = ResolveViews(expr);
  for (const std::string& used : resolved->NamesUsed()) {
    if (!instance_.Has(used) && materialized_views_.count(used) == 0) {
      return Status::NotFound("view references unknown name '" + used + "'");
    }
  }
  expression_views_[name] = std::move(resolved);
  return Status::OK();
}

Status QueryEngine::DefineSpanView(const std::string& name,
                                   const std::string& starts_query,
                                   const std::string& ends_query) {
  REGAL_RETURN_NOT_OK(CheckViewName(name));
  REGAL_ASSIGN_OR_RETURN(QueryAnswer starts, Run(starts_query));
  REGAL_ASSIGN_OR_RETURN(QueryAnswer ends, Run(ends_query));
  RegionSet spans = SpanJoin(starts.regions, ends.regions);
  stats_.cardinality[name] = static_cast<double>(spans.size());
  materialized_views_[name] = std::move(spans);
  return Status::OK();
}

Status QueryEngine::DefineWindowView(const std::string& name,
                                     const Pattern& pattern, Offset before,
                                     Offset after) {
  REGAL_RETURN_NOT_OK(CheckViewName(name));
  if (instance_.text() == nullptr || instance_.word_index() == nullptr) {
    return Status::FailedPrecondition(
        "window views need a text-backed catalog");
  }
  RegionSet windows =
      Windows(instance_.word_index()->Matches(pattern), before, after,
              instance_.text()->size());
  stats_.cardinality[name] = static_cast<double>(windows.size());
  materialized_views_[name] = std::move(windows);
  return Status::OK();
}

}  // namespace regal
