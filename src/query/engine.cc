#include "query/engine.h"

#include "core/construct.h"
#include "doc/sgml.h"
#include "doc/srccode.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "opt/optimizer.h"
#include "query/parser.h"
#include "rig/rig.h"
#include "util/timer.h"

namespace regal {

namespace {

// Mirrors the evaluator's span naming to build the estimate-only plan for
// plain `explain`, which never constructs a Tracer.
obs::Span PlanFromExpr(const ExprPtr& expr, const CatalogStats& stats) {
  obs::Span span;
  span.name = ExprSpanName(*expr);
  span.detail = ExprSpanDetail(*expr);
  span.est_rows = EstimateCost(expr, stats).cardinality;
  for (const ExprPtr& child : expr->children()) {
    span.children.push_back(PlanFromExpr(child, stats));
  }
  return span;
}

// Walks a traced span tree and the executed expression in lockstep, attaching
// the cost model's cardinality estimate to every node it can line up.
// Memoized mentions are childless, so the lockstep stops there.
void AttachEstimates(obs::Span* span, const ExprPtr& expr,
                     const CatalogStats& stats) {
  span->est_rows = EstimateCost(expr, stats).cardinality;
  if (span->children.size() != expr->children().size()) return;
  for (size_t i = 0; i < span->children.size(); ++i) {
    AttachEstimates(&span->children[i], expr->children()[i], stats);
  }
}

Status CheckNames(const Instance& instance,
                  const std::map<std::string, RegionSet>& materialized,
                  const ExprPtr& resolved) {
  for (const std::string& name : resolved->NamesUsed()) {
    if (!instance.Has(name) && materialized.count(name) == 0) {
      return Status::NotFound("unknown region name '" + name + "'");
    }
  }
  return Status::OK();
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

}  // namespace

std::string QueryProfile::Tree() const { return obs::FormatSpanTree(plan); }

std::string QueryProfile::Json() const { return obs::SpanToJson(plan); }

std::string QueryProfile::ChromeTrace() const {
  return obs::SpanToChromeTrace(plan);
}

std::vector<std::string> QueryAnswer::Rows(const Instance& instance,
                                           int limit) const {
  if (profile.has_value() && !profile->analyzed) {
    return SplitLines(profile->Tree());
  }
  std::vector<std::string> out;
  for (const Region& r : regions) {
    if (static_cast<int>(out.size()) >= limit) {
      out.push_back("... (" +
                    std::to_string(regions.size() - out.size()) + " more)");
      break;
    }
    std::string row = regal::ToString(r);
    if (instance.text() != nullptr) {
      row += "  \"" + instance.text()->Snippet(r.left, r.right) + "\"";
    }
    out.push_back(std::move(row));
  }
  return out;
}

QueryEngine::QueryEngine(Instance instance, std::optional<Digraph> rig)
    : instance_(std::move(instance)), rig_(std::move(rig)) {
  stats_ = StatsFromInstance(instance_);
}

Result<QueryEngine> QueryEngine::FromProgramSource(const std::string& source) {
  REGAL_ASSIGN_OR_RETURN(Instance instance, ParseProgram(source));
  return QueryEngine(std::move(instance), SourceCodeRig());
}

Result<QueryEngine> QueryEngine::FromSgmlSource(const std::string& source) {
  REGAL_ASSIGN_OR_RETURN(Instance instance, ParseSgml(source));
  return QueryEngine(std::move(instance), std::nullopt);
}

Status QueryEngine::Validate() const {
  REGAL_RETURN_NOT_OK(instance_.Validate());
  if (rig_.has_value()) {
    REGAL_RETURN_NOT_OK(InstanceSatisfiesRig(instance_, *rig_));
  }
  return Status::OK();
}

Result<QueryAnswer> QueryEngine::Run(const std::string& query, bool optimize) {
  REGAL_ASSIGN_OR_RETURN(QueryStatement statement, ParseStatement(query));
  switch (statement.verb) {
    case QueryVerb::kExplain:
      return ExplainExpr(statement.expr, optimize);
    case QueryVerb::kExplainAnalyze:
      return RunExpr(statement.expr, optimize, /*profile=*/true);
    case QueryVerb::kRun:
      break;
  }
  return RunExpr(statement.expr, optimize);
}

Result<QueryAnswer> QueryEngine::RunExpr(const ExprPtr& expr, bool optimize,
                                         bool profile) {
  ExprPtr resolved = ResolveViews(expr);
  REGAL_RETURN_NOT_OK(CheckNames(instance_, materialized_views_, resolved));
  QueryAnswer answer;
  answer.parsed = expr;
  answer.executed = resolved;
  if (optimize) {
    OptimizerOptions options;
    options.stats = stats_;
    if (rig_.has_value()) options.rig = &*rig_;
    OptimizeOutcome outcome = Optimize(resolved, options);
    answer.executed = outcome.expr;
    answer.rewrite_rules_applied = outcome.rules_applied;
    answer.rewrites = std::move(outcome.rewrites);
  }
  std::optional<obs::Tracer> tracer;
  if (profile) tracer.emplace();
  {
    ScopedTimer timed(&answer.elapsed_ms);
    EvalOptions eval_options;
    eval_options.bindings = &materialized_views_;
    if (profile) eval_options.tracer = &*tracer;
    if (parallel_enabled_ &&
        EstimateCost(answer.executed, stats_).cost >=
            parallel_cost_threshold_) {
      eval_options.parallel = &parallel_policy_;
    }
    Evaluator evaluator(&instance_, eval_options);
    REGAL_ASSIGN_OR_RETURN(answer.regions, evaluator.Evaluate(answer.executed));
    answer.eval_stats = evaluator.stats();
  }
  if (profile) {
    QueryProfile query_profile;
    query_profile.plan = tracer->Build();
    AttachEstimates(&query_profile.plan, answer.executed, stats_);
    query_profile.counters = tracer->counters();
    query_profile.total_ms = answer.elapsed_ms;
    query_profile.analyzed = true;
    answer.profile = std::move(query_profile);
  }
  obs::Registry& registry = obs::Registry::Default();
  registry.GetCounter("regal_queries_total",
                      {{"verb", profile ? "explain_analyze" : "run"}})
      ->Increment();
  registry.GetHistogram("regal_query_latency_ms")->Observe(answer.elapsed_ms);
  return answer;
}

Result<QueryAnswer> QueryEngine::ExplainExpr(const ExprPtr& expr,
                                             bool optimize) {
  ExprPtr resolved = ResolveViews(expr);
  REGAL_RETURN_NOT_OK(CheckNames(instance_, materialized_views_, resolved));
  QueryAnswer answer;
  answer.parsed = expr;
  answer.executed = resolved;
  if (optimize) {
    OptimizerOptions options;
    options.stats = stats_;
    if (rig_.has_value()) options.rig = &*rig_;
    OptimizeOutcome outcome = Optimize(resolved, options);
    answer.executed = outcome.expr;
    answer.rewrite_rules_applied = outcome.rules_applied;
    answer.rewrites = std::move(outcome.rewrites);
  }
  QueryProfile query_profile;
  query_profile.plan = PlanFromExpr(answer.executed, stats_);
  query_profile.analyzed = false;
  answer.profile = std::move(query_profile);
  obs::Registry::Default()
      .GetCounter("regal_queries_total", {{"verb", "explain"}})
      ->Increment();
  return answer;
}

Status QueryEngine::CheckViewName(const std::string& name) const {
  if (instance_.Has(name)) {
    return Status::AlreadyExists("'" + name + "' is a region name");
  }
  if (expression_views_.count(name) > 0 ||
      materialized_views_.count(name) > 0) {
    return Status::AlreadyExists("view '" + name + "' already defined");
  }
  return Status::OK();
}

ExprPtr QueryEngine::ResolveViews(const ExprPtr& expr) const {
  if (expr->kind() == OpKind::kName) {
    auto it = expression_views_.find(expr->name());
    return it == expression_views_.end() ? expr : it->second;
  }
  std::vector<ExprPtr> children;
  bool changed = false;
  for (const ExprPtr& c : expr->children()) {
    ExprPtr nc = ResolveViews(c);
    changed |= (nc.get() != c.get());
    children.push_back(std::move(nc));
  }
  if (!changed) return expr;
  switch (expr->kind()) {
    case OpKind::kSelect:
      return Expr::Select(expr->pattern(), children[0]);
    case OpKind::kBothIncluded:
      return Expr::BothIncluded(children[0], children[1], children[2]);
    default:
      return Expr::Binary(expr->kind(), children[0], children[1]);
  }
}

Status QueryEngine::DefineView(const std::string& name,
                               const std::string& query) {
  REGAL_RETURN_NOT_OK(CheckViewName(name));
  REGAL_ASSIGN_OR_RETURN(ExprPtr expr, ParseQuery(query));
  // Splice existing views now, so later definitions cannot create cycles.
  ExprPtr resolved = ResolveViews(expr);
  for (const std::string& used : resolved->NamesUsed()) {
    if (!instance_.Has(used) && materialized_views_.count(used) == 0) {
      return Status::NotFound("view references unknown name '" + used + "'");
    }
  }
  expression_views_[name] = std::move(resolved);
  return Status::OK();
}

Status QueryEngine::DefineSpanView(const std::string& name,
                                   const std::string& starts_query,
                                   const std::string& ends_query) {
  REGAL_RETURN_NOT_OK(CheckViewName(name));
  REGAL_ASSIGN_OR_RETURN(QueryAnswer starts, Run(starts_query));
  REGAL_ASSIGN_OR_RETURN(QueryAnswer ends, Run(ends_query));
  RegionSet spans = SpanJoin(starts.regions, ends.regions);
  stats_.cardinality[name] = static_cast<double>(spans.size());
  materialized_views_[name] = std::move(spans);
  return Status::OK();
}

Status QueryEngine::DefineWindowView(const std::string& name,
                                     const Pattern& pattern, Offset before,
                                     Offset after) {
  REGAL_RETURN_NOT_OK(CheckViewName(name));
  if (instance_.text() == nullptr || instance_.word_index() == nullptr) {
    return Status::FailedPrecondition(
        "window views need a text-backed catalog");
  }
  RegionSet windows =
      Windows(instance_.word_index()->Matches(pattern), before, after,
              instance_.text()->size());
  stats_.cardinality[name] = static_cast<double>(windows.size());
  materialized_views_[name] = std::move(windows);
  return Status::OK();
}

}  // namespace regal
