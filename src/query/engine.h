#ifndef REGAL_QUERY_ENGINE_H_
#define REGAL_QUERY_ENGINE_H_

#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "admin/admin_server.h"
#include "cache/result_cache.h"
#include "core/eval.h"
#include "core/instance.h"
#include "graph/digraph.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"
#include "opt/cost.h"
#include "opt/optimizer.h"
#include "recovery/durable.h"
#include "safety/context.h"
#include "storage/snapshot.h"
#include "util/status.h"

namespace regal {

/// The annotated execution plan behind `explain [analyze]`: a span tree
/// mirroring the executed expression, each node carrying the optimizer's
/// cardinality estimate plus — for `analyze` — actual input/output
/// cardinalities, operator work counters and wall time.
struct QueryProfile {
  obs::Span plan;
  bool analyzed = false;  // True when the plan was actually executed.
  double total_ms = 0;
  obs::OpCounters counters;  // Totals across the whole plan.

  // Governance outcome (see safety/context.h and DESIGN.md "Resource
  // governance & failure model").
  bool limits_enforced = false;  // A QueryContext was active for this run.
  bool degraded = false;         // Some parallel path fell back to sequential.
  /// Human-readable fallback records, e.g. "pool saturated: sequential
  /// evaluation" or "kernel fallback x3: sequential operators".
  std::vector<std::string> fallbacks;
  /// Peak bytes of materialized results charged against the memory budget
  /// (0 when no context was active).
  int64_t peak_memory_bytes = 0;

  // Cross-query result-cache envelope (see cache/result_cache.h and
  // DESIGN.md "Result caching"): this query's cache activity plus the
  // cache's footprint when the query finished.
  bool cache_enabled = false;
  cache::CacheQueryStats cache;
  int64_t cache_bytes = 0;

  /// Human-readable plan tree (obs::FormatSpanTree).
  std::string Tree() const;
  /// Machine-readable exports (see obs/export.h).
  std::string Json() const;
  std::string ChromeTrace() const;
};

/// A materialized query answer plus execution diagnostics.
struct QueryAnswer {
  RegionSet regions;
  ExprPtr parsed;          // The query as parsed.
  ExprPtr executed;        // After optimization (== parsed if disabled).
  int rewrite_rules_applied = 0;
  /// Which optimizer rewrites fired, in application order (empty when the
  /// optimizer was disabled or had nothing to do).
  std::vector<RewriteEvent> rewrites;
  EvalStats eval_stats;
  double elapsed_ms = 0;
  /// Set for `explain` / `explain analyze` statements (and for RunExpr with
  /// profiling requested). For plain `explain`, regions is empty and the
  /// plan carries estimates only.
  std::optional<QueryProfile> profile;

  /// Result rows rendered with text snippets (text-backed catalogs) or
  /// offset pairs (synthetic ones). At most `limit` rows. For `explain`
  /// answers the rows are the plan-tree lines instead.
  std::vector<std::string> Rows(const Instance& instance, int limit = 10) const;
};

/// The end-to-end engine: a region catalog (instance + optional RIG/schema
/// + statistics) with parse -> validate -> optimize -> evaluate execution.
class QueryEngine {
 public:
  /// Takes ownership of the instance. The RIG, when provided, enables
  /// schema validation and RIG-based rewrites.
  explicit QueryEngine(Instance instance,
                       std::optional<Digraph> rig = std::nullopt);

  ~QueryEngine();

  /// Movable while quiescent only: the background checkpointer and the
  /// admin server hold `this`, so neither may be running across a move.
  /// (Defaulted out-of-line: Checkpointer is incomplete here.)
  QueryEngine(QueryEngine&&);
  QueryEngine& operator=(QueryEngine&&);

  /// Convenience constructors for the bundled corpus formats.
  static Result<QueryEngine> FromProgramSource(const std::string& source);
  static Result<QueryEngine> FromSgmlSource(const std::string& source);

  // --- Durable snapshots (see storage/snapshot.h and DESIGN.md
  // "Durability & snapshot format") ---

  /// Persists the catalog to `path` through the storage Env
  /// (Env::Default() when null): serialized as `format` (REGAL2 by
  /// default) and committed via the atomic temp+fsync+rename protocol, so
  /// a crash at any point leaves the previous snapshot readable.
  Status SaveSnapshot(
      const std::string& path, storage::Env* env = nullptr,
      storage::SnapshotFormat format = storage::SnapshotFormat::kRegal2) const;

  /// Opens an engine over a snapshot file (REGAL1 or REGAL2, sniffed by
  /// magic). Corrupt REGAL2 snapshots fail with kDataLoss.
  static Result<QueryEngine> OpenSnapshot(
      const std::string& path, storage::Env* env = nullptr,
      std::optional<Digraph> rig = std::nullopt);

  /// Replaces this engine's catalog with the snapshot at `path` (the
  /// reindex-and-swap workflow). On success the loaded instance carries a
  /// fresh (id, epoch) identity, so result-cache entries keyed to the
  /// pre-reload catalog can never serve stale answers; expression and
  /// materialized views are dropped (they were derived from the old
  /// catalog). On failure the engine is untouched. The swap excludes
  /// in-flight queries (catalog write lock), so a query observes either
  /// the old catalog or the new one, never a half-replaced state.
  Status ReloadSnapshot(const std::string& path, storage::Env* env = nullptr);

  // --- Write-ahead log & crash recovery (see recovery/ and DESIGN.md
  // "Recovery & write-ahead log") ---

  /// Opens (or creates) a *durable* engine over the WAL + snapshot +
  /// manifest directory `dir`: crash recovery replays journaled mutations
  /// past the last checkpoint, a corrupted snapshot is quarantined and
  /// salvaged into a degraded-mode catalog (see DurableStore::Open), and
  /// every subsequent Apply() is journaled before it lands.
  static Result<QueryEngine> OpenDurable(
      const std::string& dir, recovery::DurableOptions options = {},
      storage::Env* env = nullptr, std::optional<Digraph> rig = std::nullopt);

  /// Applies one catalog mutation, journal-first when durable: the record
  /// is in the WAL (durable per the sync policy) before the in-memory
  /// catalog changes, so an acknowledged mutation survives any crash.
  /// Works on non-durable engines too (the journaling step is skipped).
  /// DefineRegions on an existing name fails (AlreadyExists) *before*
  /// journaling — the WAL only ever holds applicable records.
  Status Apply(const recovery::Mutation& m);

  /// Group commit: journals the whole batch with one fsync, then applies.
  Status ApplyBatch(const std::vector<recovery::Mutation>& batch);

  /// Convenience mutators over Apply().
  Status DefineRegions(const std::string& name, RegionSet regions);
  Status ReplaceRegions(const std::string& name, RegionSet regions);
  Status BindText(std::string text);
  Status SetSyntheticPattern(const Pattern& pattern, RegionSet regions);

  /// Checkpoints now: clean snapshot, manifest advance, WAL reset. Heals a
  /// degraded open. FailedPrecondition on a non-durable engine.
  Status Checkpoint();

  /// Starts a thread that checkpoints whenever the journal reaches the
  /// configured threshold (or the store is degraded), checking at least
  /// every `interval_ms`. Like the admin server, the engine must outlive —
  /// and must not be moved while — the checkpointer runs.
  Status StartBackgroundCheckpointer(double interval_ms = 1000.0);
  /// Stops and joins the checkpointer thread. Idempotent.
  void StopBackgroundCheckpointer();

  /// Pauses (or resumes) the background checkpointer without stopping the
  /// thread: a paused checkpointer keeps waking but skips the checkpoint
  /// itself. The brownout path uses this so snapshot IO never competes
  /// with an overloaded serving path; the WAL keeps every mutation safe
  /// meanwhile. No-op when no background checkpointer runs.
  void SetCheckpointerPaused(bool paused);
  /// True while a running background checkpointer is paused.
  bool checkpointer_paused() const;

  /// The durable store, or null for in-memory engines. Health is stable
  /// between mutations (read it from the mutating thread or /statusz).
  recovery::DurableStore* durable_store() { return durable_.get(); }

  const Instance& instance() const { return instance_; }
  const std::optional<Digraph>& rig() const { return rig_; }

  /// Checks the hierarchy invariant and (when a RIG is present) schema
  /// conformance.
  Status Validate() const;

  /// Parses and runs `query`. Unknown region names fail with NotFound
  /// before evaluation. `optimize` toggles the rewrite pass. The statement
  /// verbs `explain <q>` / `explain analyze <q>` return the annotated plan
  /// in QueryAnswer::profile (the former without executing).
  Result<QueryAnswer> Run(const std::string& query, bool optimize = true);

  /// As above, but the run is governed by `limits` instead of the
  /// engine-wide limits: admission control rejects over-complex
  /// expressions up front, and deadline / cancellation / memory-budget
  /// violations surface as kDeadlineExceeded / kCancelled /
  /// kResourceExhausted within one operator boundary.
  Result<QueryAnswer> Run(const std::string& query,
                          const safety::QueryLimits& limits,
                          bool optimize = true);

  /// True when `query` is a plain `run` statement answerable from warm
  /// state: after view resolution and optimization its root is either a
  /// raw name scan (always free — borrowed from the index) or an
  /// expression whose canonical fingerprint is resident in the result
  /// cache. Brownout mode serves only such queries; everything else gets
  /// a typed kOverloaded refusal. Never evaluates anything.
  bool IsCacheResident(const std::string& query);

  /// Runs an already-built expression. `profile` requests span tracing and
  /// fills QueryAnswer::profile (the `explain analyze` path).
  Result<QueryAnswer> RunExpr(const ExprPtr& expr, bool optimize = true,
                              bool profile = false);

  /// Builds the estimated plan for an expression without executing it (the
  /// `explain` path): optimizes (when requested) and annotates each node
  /// with the cost model's cardinality estimate.
  Result<QueryAnswer> ExplainExpr(const ExprPtr& expr, bool optimize = true);

  // --- Views (footnote 1 of the paper: dynamically constructed region
  // sets treated as names) ---

  /// An *expression view*: `name` becomes a macro for the query; uses are
  /// spliced in before optimization. Errors if the name collides with a
  /// region name or another view.
  Status DefineView(const std::string& name, const std::string& query);

  /// A *materialized span view* (PAT's `A .. B` constructor): evaluates
  /// both queries and binds `name` to the set of minimal spans from each
  /// start-region to the nearest following end-region.
  Status DefineSpanView(const std::string& name,
                        const std::string& starts_query,
                        const std::string& ends_query);

  /// A *window view*: regions of ±(before, after) bytes around each token
  /// matching the pattern. Requires a text-backed catalog.
  Status DefineWindowView(const std::string& name, const Pattern& pattern,
                          Offset before, Offset after);

  // --- Parallel execution (see exec/ and DESIGN.md "Execution
  // architecture") ---

  /// Master switch for the parallel execution layer. When on (the default),
  /// RunExpr installs a ParallelEvalPolicy whenever the optimizer's cost
  /// estimate for the executed plan reaches the threshold below. Parallel
  /// and sequential execution return bit-identical answers.
  void set_parallel_enabled(bool enabled) { parallel_enabled_ = enabled; }
  bool parallel_enabled() const { return parallel_enabled_; }

  /// Minimum estimated plan cost (EstimateCost().cost, roughly rows
  /// touched) before evaluation goes parallel. Cheap plans stay on the
  /// sequential path, whose constant factors are smaller.
  void set_parallel_cost_threshold(double cost) {
    parallel_cost_threshold_ = cost;
  }
  double parallel_cost_threshold() const { return parallel_cost_threshold_; }

  /// Tweaks the policy handed to the evaluator (pool override, kernel
  /// min_rows, subtree concurrency) — primarily for tests and benches.
  ParallelEvalPolicy* mutable_parallel_policy() { return &parallel_policy_; }

  // --- Resource governance (see safety/context.h and DESIGN.md "Resource
  // governance & failure model") ---

  /// Limits applied to every subsequent Run / RunExpr call. The default
  /// (no limits set) adds zero per-node work to evaluation.
  void set_limits(safety::QueryLimits limits) { limits_ = std::move(limits); }
  const safety::QueryLimits& limits() const { return limits_; }

  // --- Result caching (see cache/result_cache.h and DESIGN.md "Result
  // caching") ---

  /// Master switch for the cross-query result cache. When on (the
  /// default), every query seeds its evaluator memo from cached subtree
  /// results and publishes what it computes, so repeated structural
  /// sub-queries — the paper's assumed access pattern — short-circuit.
  /// Cached and recomputed answers are identical: entries are keyed by the
  /// instance's mutation epoch and verified against the canonical
  /// expression, never by fingerprint alone.
  void set_result_cache_enabled(bool enabled) {
    result_cache_enabled_ = enabled;
  }
  bool result_cache_enabled() const { return result_cache_enabled_; }

  /// The engine's cache, for tuning and inspection (tests, benches, ops).
  cache::ResultCache& result_cache() { return *result_cache_; }

  // --- Always-on telemetry & admin endpoint (see obs/, admin/ and
  // DESIGN.md "Always-on telemetry & admin endpoint") ---

  /// Master switch for per-query telemetry. When on (the default), every
  /// Run / RunExpr draws a monotonic query id, is counted in the
  /// regal_engine_inflight_queries gauge, and is offered to the flight
  /// recorder: errored and slow queries are always kept, the rest sampled
  /// 1-in-N (sampled queries additionally collect a live execution trace
  /// for /tracez). When off, only the pre-existing aggregate metrics
  /// remain — the recorder is never consulted.
  void set_telemetry_enabled(bool enabled) { telemetry_enabled_ = enabled; }
  bool telemetry_enabled() const { return telemetry_enabled_; }

  /// Recorder override for tests and multi-engine embeddings; null (the
  /// default) shares obs::FlightRecorder::Default().
  void set_flight_recorder(obs::FlightRecorder* recorder) {
    recorder_ = recorder;
  }
  /// The recorder this engine records into (override or process default).
  obs::FlightRecorder* flight_recorder() {
    return recorder_ != nullptr ? recorder_ : &obs::FlightRecorder::Default();
  }

  /// Starts the embedded admin endpoint (opt-in; loopback + ephemeral port
  /// by default) and registers this engine's /statusz sections (catalog,
  /// cache, exec, telemetry). The options' recorder defaults to this
  /// engine's flight recorder. Fails with kAlreadyExists when already
  /// enabled. The engine must outlive — and must not be moved while —
  /// the server runs: the status sections point back at it.
  Status EnableAdminServer(admin::AdminOptions options = {});

  /// Stops and destroys the admin server. Idempotent.
  void DisableAdminServer();

  /// Registers this engine's /statusz sections (catalog, cache, exec,
  /// telemetry, plus recovery when durable) on `server`, each section name
  /// prefixed with `prefix` — the multi-instance hook the query service
  /// front-end uses to expose every hosted catalog on one admin endpoint.
  /// EnableAdminServer calls this with an empty prefix. The engine must
  /// outlive the server and must not be moved while it runs.
  void RegisterStatusSections(admin::AdminServer* server,
                              const std::string& prefix = "");

  /// Registers the engine-independent "cpu" section (ISA features, active
  /// kernel tier): once per admin endpoint, however many engines it shows.
  static void RegisterCpuStatusSection(admin::AdminServer* server);

  /// The running server (port() gives the bound port), or null.
  admin::AdminServer* admin_server() { return admin_server_.get(); }

 private:
  struct Checkpointer;

  Result<QueryAnswer> RunExprWithLimits(const ExprPtr& expr,
                                        const safety::QueryLimits& limits,
                                        bool optimize, bool profile);
  Status CheckViewName(const std::string& name) const;
  /// Splices expression views into `expr` (views may reference earlier
  /// views; definition-time splicing keeps this acyclic).
  ExprPtr ResolveViews(const ExprPtr& expr) const;
  /// Runs a threshold-reached checkpoint after a mutation: hands off to
  /// the background checkpointer when running, else checkpoints inline.
  void MaybeCheckpoint();

  // Catalog read-write lock: queries / explain / statusz hold it shared,
  // Apply / ReloadSnapshot / view definition hold it exclusive — so no
  // query ever observes a half-replayed or half-swapped catalog. In a
  // unique_ptr because shared_mutex is immovable and the engine is not.
  std::unique_ptr<std::shared_mutex> catalog_mu_ =
      std::make_unique<std::shared_mutex>();
  Instance instance_;
  std::optional<Digraph> rig_;
  CatalogStats stats_;
  std::map<std::string, ExprPtr> expression_views_;
  std::map<std::string, RegionSet> materialized_views_;
  bool parallel_enabled_ = true;
  double parallel_cost_threshold_ = 1 << 16;
  ParallelEvalPolicy parallel_policy_;
  safety::QueryLimits limits_;
  // unique_ptr: the cache owns mutexes, and the engine must stay movable.
  std::unique_ptr<cache::ResultCache> result_cache_;
  bool result_cache_enabled_ = true;
  bool telemetry_enabled_ = true;
  obs::FlightRecorder* recorder_ = nullptr;
  std::unique_ptr<recovery::DurableStore> durable_;
  std::unique_ptr<Checkpointer> checkpointer_;
  // Declared last so it stops (joining its thread) before the state its
  // status sections read is torn down.
  std::unique_ptr<admin::AdminServer> admin_server_;
};

}  // namespace regal

#endif  // REGAL_QUERY_ENGINE_H_
