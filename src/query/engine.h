#ifndef REGAL_QUERY_ENGINE_H_
#define REGAL_QUERY_ENGINE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/eval.h"
#include "core/instance.h"
#include "graph/digraph.h"
#include "opt/cost.h"
#include "util/status.h"

namespace regal {

/// A materialized query answer plus execution diagnostics.
struct QueryAnswer {
  RegionSet regions;
  ExprPtr parsed;          // The query as parsed.
  ExprPtr executed;        // After optimization (== parsed if disabled).
  int rewrite_rules_applied = 0;
  EvalStats eval_stats;
  double elapsed_ms = 0;

  /// Result rows rendered with text snippets (text-backed catalogs) or
  /// offset pairs (synthetic ones). At most `limit` rows.
  std::vector<std::string> Rows(const Instance& instance, int limit = 10) const;
};

/// The end-to-end engine: a region catalog (instance + optional RIG/schema
/// + statistics) with parse -> validate -> optimize -> evaluate execution.
class QueryEngine {
 public:
  /// Takes ownership of the instance. The RIG, when provided, enables
  /// schema validation and RIG-based rewrites.
  explicit QueryEngine(Instance instance,
                       std::optional<Digraph> rig = std::nullopt);

  /// Convenience constructors for the bundled corpus formats.
  static Result<QueryEngine> FromProgramSource(const std::string& source);
  static Result<QueryEngine> FromSgmlSource(const std::string& source);

  const Instance& instance() const { return instance_; }
  const std::optional<Digraph>& rig() const { return rig_; }

  /// Checks the hierarchy invariant and (when a RIG is present) schema
  /// conformance.
  Status Validate() const;

  /// Parses and runs `query`. Unknown region names fail with NotFound
  /// before evaluation. `optimize` toggles the rewrite pass.
  Result<QueryAnswer> Run(const std::string& query, bool optimize = true);

  /// Runs an already-built expression.
  Result<QueryAnswer> RunExpr(const ExprPtr& expr, bool optimize = true);

  // --- Views (footnote 1 of the paper: dynamically constructed region
  // sets treated as names) ---

  /// An *expression view*: `name` becomes a macro for the query; uses are
  /// spliced in before optimization. Errors if the name collides with a
  /// region name or another view.
  Status DefineView(const std::string& name, const std::string& query);

  /// A *materialized span view* (PAT's `A .. B` constructor): evaluates
  /// both queries and binds `name` to the set of minimal spans from each
  /// start-region to the nearest following end-region.
  Status DefineSpanView(const std::string& name,
                        const std::string& starts_query,
                        const std::string& ends_query);

  /// A *window view*: regions of ±(before, after) bytes around each token
  /// matching the pattern. Requires a text-backed catalog.
  Status DefineWindowView(const std::string& name, const Pattern& pattern,
                          Offset before, Offset after);

 private:
  Status CheckViewName(const std::string& name) const;
  /// Splices expression views into `expr` (views may reference earlier
  /// views; definition-time splicing keeps this acyclic).
  ExprPtr ResolveViews(const ExprPtr& expr) const;

  Instance instance_;
  std::optional<Digraph> rig_;
  CatalogStats stats_;
  std::map<std::string, ExprPtr> expression_views_;
  std::map<std::string, RegionSet> materialized_views_;
};

}  // namespace regal

#endif  // REGAL_QUERY_ENGINE_H_
