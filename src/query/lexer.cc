#include "query/lexer.h"

#include "util/stringutil.h"

namespace regal {

namespace {

// Admission cap on query size: a hostile caller can feed megabytes of "a|a|
// a|..." — the lexer refuses past this many tokens so the parser never sees
// pathological inputs. Generous: real queries are tens of tokens.
constexpr size_t kMaxQueryTokens = 1u << 16;

}  // namespace

Result<std::vector<QueryToken>> LexQuery(const std::string& query) {
  std::vector<QueryToken> tokens;
  size_t i = 0;
  const size_t n = query.size();
  while (i < n) {
    if (tokens.size() >= kMaxQueryTokens) {
      return Status::ResourceExhausted(
          "query rejected: more than " + std::to_string(kMaxQueryTokens) +
          " tokens");
    }
    char c = query[i];
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      ++i;
      continue;
    }
    int position = static_cast<int>(i);
    switch (c) {
      case '|':
        tokens.push_back({QueryTokenKind::kPipe, "|", position});
        ++i;
        continue;
      case '&':
        tokens.push_back({QueryTokenKind::kAmp, "&", position});
        ++i;
        continue;
      case '-':
        tokens.push_back({QueryTokenKind::kMinus, "-", position});
        ++i;
        continue;
      case '(':
        tokens.push_back({QueryTokenKind::kLParen, "(", position});
        ++i;
        continue;
      case ')':
        tokens.push_back({QueryTokenKind::kRParen, ")", position});
        ++i;
        continue;
      case ',':
        tokens.push_back({QueryTokenKind::kComma, ",", position});
        ++i;
        continue;
      case '~':
        tokens.push_back({QueryTokenKind::kTilde, "~", position});
        ++i;
        continue;
      case '"': {
        size_t close = query.find('"', i + 1);
        if (close == std::string::npos) {
          return Status::InvalidArgument("unterminated string at offset " +
                                         std::to_string(i));
        }
        tokens.push_back({QueryTokenKind::kString,
                          query.substr(i + 1, close - i - 1), position});
        i = close + 1;
        continue;
      }
      default:
        break;
    }
    if (IsIdentChar(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(query[i])) ++i;
      tokens.push_back(
          {QueryTokenKind::kIdent, query.substr(start, i - start), position});
      continue;
    }
    return Status::InvalidArgument("unexpected character '" +
                                   std::string(1, c) + "' at offset " +
                                   std::to_string(i));
  }
  tokens.push_back({QueryTokenKind::kEnd, "", static_cast<int>(n)});
  return tokens;
}

}  // namespace regal
