#include "query/parser.h"

#include "query/lexer.h"

namespace regal {

namespace {

// Cap on grammar recursion: deeper queries (thousands of unbalanced '('
// or a right-leaning chain of structure operators) would otherwise walk
// toward stack overflow. 200 nests is far beyond any legitimate query.
constexpr int kMaxParseDepth = 200;

class Parser {
 public:
  explicit Parser(std::vector<QueryToken> tokens)
      : tokens_(std::move(tokens)) {}

  Result<ExprPtr> Parse() {
    REGAL_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    if (Peek().kind != QueryTokenKind::kEnd) {
      return Fail("trailing input");
    }
    return e;
  }

  Result<QueryStatement> ParseTopLevel() {
    QueryStatement statement;
    if (ConsumeKeyword("explain")) {
      statement.verb = ConsumeKeyword("analyze") ? QueryVerb::kExplainAnalyze
                                                 : QueryVerb::kExplain;
    }
    REGAL_ASSIGN_OR_RETURN(statement.expr, Parse());
    return statement;
  }

 private:
  const QueryToken& Peek() const { return tokens_[pos_]; }

  bool ConsumeIf(QueryTokenKind kind) {
    if (Peek().kind != kind) return false;
    ++pos_;
    return true;
  }

  bool ConsumeKeyword(const std::string& word) {
    if (Peek().kind != QueryTokenKind::kIdent || Peek().text != word) {
      return false;
    }
    ++pos_;
    return true;
  }

  Status Fail(const std::string& message) const {
    return Status::InvalidArgument(
        message + " at offset " + std::to_string(Peek().position) +
        (Peek().text.empty() ? "" : " (near '" + Peek().text + "')"));
  }

  /// Balances depth_ across every exit path of the recursive productions.
  class DepthScope {
   public:
    explicit DepthScope(int* depth) : depth_(depth) { ++*depth_; }
    ~DepthScope() { --*depth_; }

   private:
    int* depth_;
  };

  Status CheckDepth() const {
    if (depth_ <= kMaxParseDepth) return Status::OK();
    return Status::ResourceExhausted(
        "query rejected: nesting deeper than " +
        std::to_string(kMaxParseDepth));
  }

  Result<ExprPtr> ParseExpr() {
    DepthScope scope(&depth_);
    REGAL_RETURN_NOT_OK(CheckDepth());
    REGAL_ASSIGN_OR_RETURN(ExprPtr left, ParseTerm());
    while (ConsumeIf(QueryTokenKind::kPipe)) {
      REGAL_ASSIGN_OR_RETURN(ExprPtr right, ParseTerm());
      left = Expr::Union(std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseTerm() {
    REGAL_ASSIGN_OR_RETURN(ExprPtr left, ParseStruct());
    while (true) {
      if (ConsumeIf(QueryTokenKind::kAmp)) {
        REGAL_ASSIGN_OR_RETURN(ExprPtr right, ParseStruct());
        left = Expr::Intersect(std::move(left), std::move(right));
      } else if (ConsumeIf(QueryTokenKind::kMinus)) {
        REGAL_ASSIGN_OR_RETURN(ExprPtr right, ParseStruct());
        left = Expr::Difference(std::move(left), std::move(right));
      } else {
        return left;
      }
    }
  }

  Result<ExprPtr> ParseStruct() {
    DepthScope scope(&depth_);
    REGAL_RETURN_NOT_OK(CheckDepth());
    REGAL_ASSIGN_OR_RETURN(ExprPtr left, ParsePostfix());
    struct OpName {
      const char* word;
      OpKind kind;
    };
    static constexpr OpName kOps[] = {
        {"including", OpKind::kIncluding},
        {"within", OpKind::kIncluded},
        {"before", OpKind::kPrecedes},
        {"after", OpKind::kFollows},
        {"dincluding", OpKind::kDirectIncluding},
        {"dwithin", OpKind::kDirectIncluded},
    };
    for (const OpName& op : kOps) {
      if (ConsumeKeyword(op.word)) {
        // Right associative: the whole remaining struct binds to the right,
        // matching the paper's right-grouping convention.
        REGAL_ASSIGN_OR_RETURN(ExprPtr right, ParseStruct());
        return Expr::Binary(op.kind, std::move(left), std::move(right));
      }
    }
    return left;
  }

  Result<ExprPtr> ParsePostfix() {
    REGAL_ASSIGN_OR_RETURN(ExprPtr e, ParsePrimary());
    while (ConsumeKeyword("matching")) {
      bool case_insensitive = ConsumeIf(QueryTokenKind::kTilde);
      if (Peek().kind != QueryTokenKind::kString) {
        return Fail("expected a quoted pattern after 'matching'");
      }
      REGAL_ASSIGN_OR_RETURN(Pattern p,
                             Pattern::Parse(Peek().text, case_insensitive));
      ++pos_;
      e = Expr::Select(std::move(p), std::move(e));
    }
    return e;
  }

  Result<ExprPtr> ParsePrimary() {
    if (ConsumeIf(QueryTokenKind::kLParen)) {
      REGAL_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      if (!ConsumeIf(QueryTokenKind::kRParen)) return Fail("expected ')'");
      return e;
    }
    if (Peek().kind == QueryTokenKind::kIdent && Peek().text == "bi" &&
        tokens_[pos_ + 1].kind == QueryTokenKind::kLParen) {
      pos_ += 2;
      REGAL_ASSIGN_OR_RETURN(ExprPtr r, ParseExpr());
      if (!ConsumeIf(QueryTokenKind::kComma)) return Fail("expected ','");
      REGAL_ASSIGN_OR_RETURN(ExprPtr s, ParseExpr());
      if (!ConsumeIf(QueryTokenKind::kComma)) return Fail("expected ','");
      REGAL_ASSIGN_OR_RETURN(ExprPtr t, ParseExpr());
      if (!ConsumeIf(QueryTokenKind::kRParen)) return Fail("expected ')'");
      return Expr::BothIncluded(std::move(r), std::move(s), std::move(t));
    }
    if (Peek().kind == QueryTokenKind::kIdent && Peek().text == "word" &&
        (tokens_[pos_ + 1].kind == QueryTokenKind::kString ||
         tokens_[pos_ + 1].kind == QueryTokenKind::kTilde)) {
      ++pos_;
      bool case_insensitive = ConsumeIf(QueryTokenKind::kTilde);
      if (Peek().kind != QueryTokenKind::kString) {
        return Fail("expected a quoted pattern after 'word'");
      }
      REGAL_ASSIGN_OR_RETURN(Pattern p,
                             Pattern::Parse(Peek().text, case_insensitive));
      ++pos_;
      return Expr::WordMatch(std::move(p));
    }
    if (Peek().kind == QueryTokenKind::kIdent) {
      std::string name = Peek().text;
      ++pos_;
      return Expr::Name(std::move(name));
    }
    return Fail("expected a region name, '(', 'bi(' or 'word \"...\"'");
  }

  std::vector<QueryToken> tokens_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Result<ExprPtr> ParseQuery(const std::string& query) {
  REGAL_ASSIGN_OR_RETURN(std::vector<QueryToken> tokens, LexQuery(query));
  return Parser(std::move(tokens)).Parse();
}

Result<QueryStatement> ParseStatement(const std::string& query) {
  REGAL_ASSIGN_OR_RETURN(std::vector<QueryToken> tokens, LexQuery(query));
  return Parser(std::move(tokens)).ParseTopLevel();
}

}  // namespace regal
