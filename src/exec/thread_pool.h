#ifndef REGAL_EXEC_THREAD_POOL_H_
#define REGAL_EXEC_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace regal {
namespace exec {

/// Fixed-size thread pool shared by the parallel operator kernels, the
/// evaluator's concurrent subtree execution, and the index builders.
///
/// A pool of `num_threads` *lanes* runs `num_threads - 1` worker threads:
/// the submitting thread is always the extra lane, participating in every
/// ParallelFor and running unclaimed Submit tasks inline on Wait. This
/// caller-runs discipline makes nested parallelism (a pool task that itself
/// fans out) deadlock-free — a waiter never blocks on work that no thread
/// has picked up — and makes `ThreadPool(1)` exactly the sequential path
/// (zero workers, every task inline).
///
/// The process-wide Default() pool is created lazily on first use and sized
/// by the REGAL_THREADS environment variable (falling back to
/// std::thread::hardware_concurrency).
///
/// Observability (obs::Registry::Default(), updated from the submitting
/// thread only so metric pointers are never cached across Registry::Clear):
///   regal_exec_threads            gauge    lanes of the default pool
///   regal_exec_queue_depth        gauge    queue length sampled at submit
///   regal_exec_tasks_total        counter  chunk/task executions
///   regal_exec_steals_total       counter  executions claimed by a worker
///                                          (i.e. stolen from the caller's
///                                          inline path)
class ThreadPool {
 public:
  /// `num_threads` lanes (>= 1): num_threads - 1 workers plus the caller.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The lazily-started process-wide pool, sized by REGAL_THREADS.
  static ThreadPool& Default();

  /// Lanes of Default(): REGAL_THREADS if set and valid, else
  /// hardware_concurrency (minimum 1). Stable after first call.
  static int DefaultNumThreads();

  /// Parses a REGAL_THREADS-style value; returns `fallback` when null,
  /// empty, non-numeric or out of [1, 512]. Exposed for tests.
  static int ParseThreads(const char* value, int fallback);

  /// Total lanes (workers + caller).
  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Handle to a Submit()ed task. Wait() runs the task inline if no worker
  /// has claimed it yet, then blocks until it finished.
  class TaskHandle {
   public:
    TaskHandle() = default;
    void Wait();

   private:
    friend class ThreadPool;
    struct State;
    std::shared_ptr<State> state_;
  };

  /// Schedules `fn`. `fn` must not throw.
  TaskHandle Submit(std::function<void()> fn);

  /// Runs fn(0) .. fn(n - 1), distributing indices over the workers with
  /// the caller participating; returns when all n calls completed. Indices
  /// are claimed dynamically, so chunk sizes self-balance. `fn` must not
  /// throw and must tolerate concurrent invocation on distinct indices.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Queue length at this instant (tasks submitted but not yet claimed).
  size_t ApproxQueueDepth() const;

  /// Admission signal for graceful degradation: true when the backlog
  /// exceeds a small multiple of the lane count (every lane busy plus a
  /// full round of queued work), or when the "exec.pool.saturated"
  /// failpoint fires. The engine answers saturation by evaluating
  /// sequentially instead of queueing more parallel work — see
  /// QueryEngine::RunExpr and DESIGN.md "Resource governance".
  bool Saturated() const;

 private:
  struct ForState;

  void WorkerLoop();
  void Enqueue(std::shared_ptr<TaskHandle::State> task);

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<std::shared_ptr<TaskHandle::State>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace exec
}  // namespace regal

#endif  // REGAL_EXEC_THREAD_POOL_H_
