#include "exec/thread_pool.h"

#include <cstdlib>
#include <string>

#include "obs/metrics.h"
#include "safety/failpoint.h"

namespace regal {
namespace exec {

namespace {

// Registry updates fetch the metric fresh each time: pointers cached across
// obs::Registry::Clear() (used for test/bench isolation) would dangle.
// Dispatch bookkeeping still happens on the submitting thread only;
// ActiveLaneScope additionally updates the utilization gauge from whichever
// lane runs the work, which is safe for the same fetch-fresh reason.
void RecordDispatch(size_t queue_depth, int64_t tasks, int64_t steals) {
  obs::Registry& registry = obs::Registry::Default();
  registry.GetGauge("regal_exec_queue_depth")
      ->Set(static_cast<double>(queue_depth));
  if (tasks > 0) registry.GetCounter("regal_exec_tasks_total")->Increment(tasks);
  if (steals > 0) {
    registry.GetCounter("regal_exec_steals_total")->Increment(steals);
  }
}

// Up-down gauge of lanes currently executing pool work — the utilization
// numerator against the regal_exec_threads denominator. One registry fetch
// + two atomic adds per lane *participation* (a Submit task or one lane's
// share of a ParallelFor), not per claimed index, so the always-on cost is
// amortized over the chunk work the lane does.
class ActiveLaneScope {
 public:
  ActiveLaneScope()
      : gauge_(obs::Registry::Default().GetGauge("regal_exec_active_lanes")) {
    gauge_->Add(1);
  }
  ~ActiveLaneScope() { gauge_->Add(-1); }
  ActiveLaneScope(const ActiveLaneScope&) = delete;
  ActiveLaneScope& operator=(const ActiveLaneScope&) = delete;

 private:
  obs::Gauge* gauge_;
};

}  // namespace

/// One Submit()ed task. `claimed` arbitrates between a worker and the
/// waiting caller; whoever wins the compare-exchange runs `fn` exactly once.
struct ThreadPool::TaskHandle::State {
  std::function<void()> fn;
  std::atomic<bool> claimed{false};
  std::atomic<bool> ran_on_worker{false};
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;

  // Returns true if this call claimed and ran the task.
  bool TryRun(bool on_worker) {
    bool expected = false;
    if (!claimed.compare_exchange_strong(expected, true)) return false;
    if (on_worker) ran_on_worker.store(true, std::memory_order_relaxed);
    {
      ActiveLaneScope active;
      fn();
    }
    {
      std::lock_guard<std::mutex> lock(mu);
      done = true;
    }
    cv.notify_all();
    return true;
  }
};

void ThreadPool::TaskHandle::Wait() {
  if (state_ == nullptr) return;
  if (!state_->TryRun(/*on_worker=*/false)) {
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->cv.wait(lock, [&] { return state_->done; });
  }
  RecordDispatch(0, 1,
                 state_->ran_on_worker.load(std::memory_order_relaxed) ? 1 : 0);
  state_.reset();
}

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(static_cast<size_t>(num_threads - 1));
  for (int i = 0; i < num_threads - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

ThreadPool& ThreadPool::Default() {
  static ThreadPool* pool = [] {
    auto* p = new ThreadPool(DefaultNumThreads());
    obs::Registry::Default().GetGauge("regal_exec_threads")
        ->Set(static_cast<double>(p->num_threads()));
    return p;
  }();
  return *pool;
}

int ThreadPool::ParseThreads(const char* value, int fallback) {
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  long parsed = std::strtol(value, &end, 10);
  if (end == value || *end != '\0') return fallback;
  if (parsed < 1 || parsed > 512) return fallback;
  return static_cast<int>(parsed);
}

int ThreadPool::DefaultNumThreads() {
  static int threads = [] {
    int hw = static_cast<int>(std::thread::hardware_concurrency());
    if (hw < 1) hw = 1;
    return ParseThreads(std::getenv("REGAL_THREADS"), hw);
  }();
  return threads;
}

size_t ThreadPool::ApproxQueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

bool ThreadPool::Saturated() const {
  if (safety::FailpointFires("exec.pool.saturated")) return true;
  // Two queued tasks per lane means every lane is busy and has a full
  // backlog behind it; adding parallel work then only grows the queue.
  return ApproxQueueDepth() >
         static_cast<size_t>(2 * num_threads());
}

void ThreadPool::Enqueue(std::shared_ptr<TaskHandle::State> task) {
  size_t depth;
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    depth = queue_.size();
  }
  work_cv_.notify_one();
  RecordDispatch(depth, 0, 0);
}

ThreadPool::TaskHandle ThreadPool::Submit(std::function<void()> fn) {
  TaskHandle handle;
  handle.state_ = std::make_shared<TaskHandle::State>();
  handle.state_->fn = std::move(fn);
  if (workers_.empty()) return handle;  // Wait() runs it inline.
  Enqueue(handle.state_);
  return handle;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::shared_ptr<TaskHandle::State> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task->TryRun(/*on_worker=*/true);  // Skips tasks the caller already ran.
  }
}

/// Shared state of one ParallelFor: indices are claimed via `next`, and the
/// caller waits until `done` reaches `n`. Queued helper jobs that find no
/// index left exit immediately, so stale helpers are harmless.
struct ThreadPool::ForState {
  const std::function<void(size_t)>* fn = nullptr;
  size_t n = 0;
  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};
  std::atomic<int64_t> stolen{0};
  std::mutex mu;
  std::condition_variable cv;

  void Drive(bool on_worker) {
    for (;;) {
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      (*fn)(i);
      // Tally the steal before the done increment that may release the
      // waiter, so the caller's metric read sees it.
      if (on_worker) stolen.fetch_add(1, std::memory_order_relaxed);
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
        {
          std::lock_guard<std::mutex> lock(mu);  // Pairs with the waiter.
        }
        cv.notify_all();
      }
    }
  }
};

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    RecordDispatch(0, static_cast<int64_t>(n), 0);
    return;
  }
  auto state = std::make_shared<ForState>();
  state->fn = &fn;
  state->n = n;
  size_t helpers = workers_.size() < n - 1 ? workers_.size() : n - 1;
  for (size_t i = 0; i < helpers; ++i) {
    auto task = std::make_shared<TaskHandle::State>();
    task->fn = [state] { state->Drive(/*on_worker=*/true); };
    Enqueue(task);
  }
  {
    // Worker-side drives are counted by TryRun; the caller's lane counts
    // itself here.
    ActiveLaneScope active;
    state->Drive(/*on_worker=*/false);
  }
  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->cv.wait(lock, [&] {
      return state->done.load(std::memory_order_acquire) == state->n;
    });
  }
  RecordDispatch(0, static_cast<int64_t>(n),
                 state->stolen.load(std::memory_order_relaxed));
}

}  // namespace exec
}  // namespace regal
