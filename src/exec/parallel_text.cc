#include "exec/parallel_text.h"

#include <utility>

#include "util/stringutil.h"

namespace regal {
namespace exec {

namespace {

// Chunk boundaries for `text` over `lanes` chunks, each boundary advanced to
// the next non-identifier byte so tokens never straddle a cut. Returns
// strictly increasing offsets {0, ..., text.size()}; may produce fewer than
// `lanes` chunks when boundaries collide.
std::vector<size_t> ChunkBoundaries(std::string_view text, size_t lanes) {
  std::vector<size_t> cuts;
  cuts.push_back(0);
  for (size_t k = 1; k < lanes; ++k) {
    size_t pos = k * text.size() / lanes;
    while (pos < text.size() && IsIdentChar(text[pos])) ++pos;
    if (pos > cuts.back() && pos < text.size()) cuts.push_back(pos);
  }
  cuts.push_back(text.size());
  return cuts;
}

size_t Lanes(ThreadPool* pool) {
  return pool != nullptr ? static_cast<size_t>(pool->num_threads()) : 1;
}

}  // namespace

std::vector<Token> ParallelTokenize(std::string_view text, ThreadPool* pool,
                                    size_t min_bytes) {
  const size_t lanes = Lanes(pool);
  if (lanes <= 1 || text.size() < min_bytes) return Tokenize(text);
  std::vector<size_t> cuts = ChunkBoundaries(text, lanes);
  const size_t chunks = cuts.size() - 1;
  if (chunks <= 1) return Tokenize(text);
  std::vector<std::vector<Token>> partial(chunks);
  pool->ParallelFor(chunks, [&](size_t k) {
    std::vector<Token> local =
        Tokenize(text.substr(cuts[k], cuts[k + 1] - cuts[k]));
    const Offset shift = static_cast<Offset>(cuts[k]);
    for (Token& t : local) {
      t.left += shift;
      t.right += shift;
    }
    partial[k] = std::move(local);
  });
  size_t total = 0;
  for (const auto& p : partial) total += p.size();
  std::vector<Token> out;
  out.reserve(total);
  for (const auto& p : partial) out.insert(out.end(), p.begin(), p.end());
  return out;
}

std::map<std::string, std::vector<Token>> ParallelPostings(
    std::string_view text, ThreadPool* pool, int64_t* num_tokens,
    size_t min_bytes) {
  const size_t lanes = Lanes(pool);
  std::map<std::string, std::vector<Token>> postings;
  int64_t count = 0;
  if (lanes <= 1 || text.size() < min_bytes) {
    for (const Token& t : Tokenize(text)) {
      postings[std::string(TokenText(text, t))].push_back(t);
      ++count;
    }
    *num_tokens = count;
    return postings;
  }
  std::vector<size_t> cuts = ChunkBoundaries(text, lanes);
  const size_t chunks = cuts.size() - 1;
  std::vector<std::map<std::string, std::vector<Token>>> partial(chunks);
  pool->ParallelFor(chunks, [&](size_t k) {
    std::string_view chunk = text.substr(cuts[k], cuts[k + 1] - cuts[k]);
    const Offset shift = static_cast<Offset>(cuts[k]);
    auto& local = partial[k];
    for (Token t : Tokenize(chunk)) {
      t.left += shift;
      t.right += shift;
      local[std::string(TokenText(text, t))].push_back(t);
    }
  });
  // Merge in chunk order: chunks cover increasing text ranges, so appending
  // keeps every postings list in occurrence order, matching the sequential
  // build.
  for (auto& local : partial) {
    for (auto& [word, tokens] : local) {
      std::vector<Token>& dst = postings[word];
      count += static_cast<int64_t>(tokens.size());
      if (dst.empty()) {
        dst = std::move(tokens);
      } else {
        dst.insert(dst.end(), tokens.begin(), tokens.end());
      }
    }
  }
  *num_tokens = count;
  return postings;
}

}  // namespace exec
}  // namespace regal
