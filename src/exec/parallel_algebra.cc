#include "exec/parallel_algebra.h"

#include <algorithm>
#include <bit>

#include "core/algebra.h"
#include "core/algebra_kernels.h"
#include "obs/metrics.h"
#include "safety/failpoint.h"

namespace regal {
namespace exec {

namespace {

// Chunks smaller than this are not worth a task dispatch.
constexpr size_t kMinChunkRows = 2048;

ThreadPool& PoolOf(const ParallelConfig& cfg) {
  return cfg.pool != nullptr ? *cfg.pool : ThreadPool::Default();
}

int PartitionCount(const ParallelConfig& cfg, size_t rows) {
  int lanes = cfg.max_partitions > 0 ? cfg.max_partitions
                                     : PoolOf(cfg).num_threads();
  size_t by_rows = rows / kMinChunkRows;
  if (by_rows < 1) by_rows = 1;
  return static_cast<int>(
      std::min(static_cast<size_t>(lanes), by_rows));
}

void CountParallelDispatch(const char* op) {
  obs::Registry::Default()
      .GetCounter("regal_exec_parallel_ops_total", {{"op", op}})
      ->Increment();
}

// Degradation failpoint shared by every kernel: when "exec.kernel.degrade"
// fires, the kernel runs its sequential twin instead of partitioning —
// same answer (the kernels are bit-identical to the sequential operators),
// recorded so the fallback is observable.
bool DegradeKernel(const char* op, const ParallelConfig& cfg) {
  if (!safety::FailpointFires("exec.kernel.degrade")) return false;
  obs::Registry::Default()
      .GetCounter("regal_safety_kernel_fallbacks_total", {{"op", op}})
      ->Increment();
  // The per-query tally feeds the explain-analyze profile; the labeled
  // global counter above is fleet metrics only.
  if (cfg.fallbacks != nullptr) {
    cfg.fallbacks->fetch_add(1, std::memory_order_relaxed);
  }
  return true;
}

// Same per-probe comparison charge as core/algebra.cc.
int64_t ProbeDepth(size_t n) {
  return static_cast<int64_t>(std::bit_width(n) + 1);
}

std::vector<Region> Concatenate(std::vector<std::vector<Region>>* chunks) {
  size_t total = 0;
  for (const auto& c : *chunks) total += c.size();
  std::vector<Region> out;
  out.reserve(total);
  for (auto& c : *chunks) out.insert(out.end(), c.begin(), c.end());
  return out;
}

using MergeKernel = void (*)(const Region*, const Region*, const Region*,
                             const Region*, std::vector<Region>*,
                             obs::OpCounters*);

// Splits R at index boundaries, binary-searches the matching value window of
// S for every chunk (chunk k owns the endpoint interval
// [R[cut_k], R[cut_{k+1}})), and runs `kernel` per chunk on the pool. Chunk
// outputs cover disjoint, increasing endpoint intervals, so concatenation is
// the full sorted merge.
RegionSet PartitionedMerge(const char* op, const RegionSet& r,
                           const RegionSet& s, MergeKernel kernel,
                           const ParallelConfig& cfg) {
  const Region* rd = r.regions().data();
  const Region* sd = s.regions().data();
  const int parts = PartitionCount(cfg, r.size());
  if (parts <= 1) {
    std::vector<Region> out;
    out.reserve(r.size() + s.size());
    obs::OpCounters c;
    kernel(rd, rd + r.size(), sd, sd + s.size(), &out, &c);
    kernels::FlushCounters(c);
    return RegionSet::FromSortedUnique(std::move(out));
  }
  const size_t np = static_cast<size_t>(parts);
  std::vector<size_t> rcut(np + 1), scut(np + 1);
  RegionDocumentOrder less;
  rcut[0] = 0;
  scut[0] = 0;
  rcut[np] = r.size();
  scut[np] = s.size();
  for (size_t k = 1; k < np; ++k) {
    rcut[k] = k * r.size() / np;
    scut[k] = static_cast<size_t>(
        std::lower_bound(sd, sd + s.size(), rd[rcut[k]], less) - sd);
  }
  std::vector<std::vector<Region>> outs(np);
  std::vector<obs::OpCounters> counters(np);
  PoolOf(cfg).ParallelFor(np, [&](size_t k) {
    // Chunk-granularity checkpoint: a cancelled/over-deadline query skips
    // the remaining chunks. The evaluator re-checks the context at the next
    // operator boundary — and once more before Evaluate() returns, which
    // covers a kernel running under the root operator — and discards this
    // (partial) result.
    if (cfg.ctx != nullptr && cfg.ctx->ShouldAbort()) return;
    outs[k].reserve((rcut[k + 1] - rcut[k]) + (scut[k + 1] - scut[k]));
    kernel(rd + rcut[k], rd + rcut[k + 1], sd + scut[k], sd + scut[k + 1],
           &outs[k], &counters[k]);
  });
  obs::OpCounters total;
  for (const obs::OpCounters& c : counters) total.Add(c);
  kernels::FlushCounters(total);
  CountParallelDispatch(op);
  return RegionSet::FromSortedUnique(Concatenate(&outs));
}

// Partitioned order-preserving filter of R: chunk k keeps the elements of
// R[cut_k, cut_{k+1}) satisfying `pred`. `per_element` is the deterministic
// counter charge per probed element (matching the sequential operators) and
// `fixed` the per-call charge.
template <typename Pred>
RegionSet PartitionedFilter(const char* op, const RegionSet& r, Pred pred,
                            const obs::OpCounters& per_element,
                            const obs::OpCounters& fixed,
                            const ParallelConfig& cfg) {
  const Region* rd = r.regions().data();
  obs::OpCounters total = fixed;
  total.comparisons += per_element.comparisons * static_cast<int64_t>(r.size());
  total.merge_steps += per_element.merge_steps * static_cast<int64_t>(r.size());
  total.index_probes +=
      per_element.index_probes * static_cast<int64_t>(r.size());
  const int parts = PartitionCount(cfg, r.size());
  if (parts <= 1) {
    std::vector<Region> out;
    for (const Region& x : r) {
      if (pred(x)) out.push_back(x);
    }
    kernels::FlushCounters(total);
    return RegionSet::FromSortedUnique(std::move(out));
  }
  const size_t np = static_cast<size_t>(parts);
  std::vector<std::vector<Region>> outs(np);
  PoolOf(cfg).ParallelFor(np, [&](size_t k) {
    if (cfg.ctx != nullptr && cfg.ctx->ShouldAbort()) return;
    const size_t begin = k * r.size() / np;
    const size_t end = (k + 1) * r.size() / np;
    for (size_t i = begin; i < end; ++i) {
      if (pred(rd[i])) outs[k].push_back(rd[i]);
    }
  });
  kernels::FlushCounters(total);
  CountParallelDispatch(op);
  return RegionSet::FromSortedUnique(Concatenate(&outs));
}

bool BelowGate(const ParallelConfig& cfg, size_t rows) {
  return rows < cfg.min_rows;
}

}  // namespace

RegionSet ParallelUnion(const RegionSet& r, const RegionSet& s,
                        const ParallelConfig& cfg) {
  if (BelowGate(cfg, r.size() + s.size())) return Union(r, s);
  if (DegradeKernel("union", cfg)) return Union(r, s);
  // Union is symmetric; partition the longer operand for balance.
  const RegionSet& a = r.size() >= s.size() ? r : s;
  const RegionSet& b = r.size() >= s.size() ? s : r;
  return PartitionedMerge("union", a, b, &kernels::UnionSpan, cfg);
}

RegionSet ParallelIntersect(const RegionSet& r, const RegionSet& s,
                            const ParallelConfig& cfg) {
  if (BelowGate(cfg, r.size() + s.size())) return Intersect(r, s);
  if (DegradeKernel("intersect", cfg)) return Intersect(r, s);
  const RegionSet& a = r.size() >= s.size() ? r : s;
  const RegionSet& b = r.size() >= s.size() ? s : r;
  return PartitionedMerge("intersect", a, b, &kernels::IntersectSpan, cfg);
}

RegionSet ParallelDifference(const RegionSet& r, const RegionSet& s,
                             const ParallelConfig& cfg) {
  if (BelowGate(cfg, r.size() + s.size())) return Difference(r, s);
  if (DegradeKernel("difference", cfg)) return Difference(r, s);
  return PartitionedMerge("difference", r, s, &kernels::DifferenceSpan, cfg);
}

RegionSet ParallelIncluding(const RegionSet& r, const RegionSet& s,
                            const ParallelConfig& cfg) {
  if (BelowGate(cfg, r.size() + s.size())) return Including(r, s);
  if (DegradeKernel("including", cfg)) return Including(r, s);
  ContainmentIndex index(s);
  return PartitionedFilter(
      "including", r,
      [&index](const Region& x) { return index.ExistsIncludedIn(x); },
      obs::OpCounters{ProbeDepth(s.size()), 0, 1}, obs::OpCounters{}, cfg);
}

RegionSet ParallelIncluded(const RegionSet& r, const RegionSet& s,
                           const ParallelConfig& cfg) {
  if (BelowGate(cfg, r.size() + s.size())) return Included(r, s);
  if (DegradeKernel("included", cfg)) return Included(r, s);
  ContainmentIndex index(s);
  return PartitionedFilter(
      "included", r,
      [&index](const Region& x) { return index.ExistsIncluding(x); },
      obs::OpCounters{ProbeDepth(s.size()), 0, 1}, obs::OpCounters{}, cfg);
}

RegionSet ParallelPrecedes(const RegionSet& r, const RegionSet& s,
                           const ParallelConfig& cfg) {
  if (BelowGate(cfg, r.size() + s.size())) return Precedes(r, s);
  if (DegradeKernel("precedes", cfg)) return Precedes(r, s);
  if (s.empty()) {
    kernels::FlushCounters(
        obs::OpCounters{static_cast<int64_t>(r.size()),
                        static_cast<int64_t>(r.size()), 0});
    return RegionSet();
  }
  const Offset max_left = s[s.size() - 1].left;
  return PartitionedFilter(
      "precedes", r, [max_left](const Region& x) { return x.right < max_left; },
      obs::OpCounters{1, 1, 0}, obs::OpCounters{0, 1, 0}, cfg);
}

RegionSet ParallelFollows(const RegionSet& r, const RegionSet& s,
                          const ParallelConfig& cfg) {
  if (BelowGate(cfg, r.size() + s.size())) return Follows(r, s);
  if (DegradeKernel("follows", cfg)) return Follows(r, s);
  if (s.empty()) {
    kernels::FlushCounters(
        obs::OpCounters{static_cast<int64_t>(r.size()),
                        static_cast<int64_t>(r.size() + s.size()), 0});
    return RegionSet();
  }
  Offset min_right = s[0].right;
  for (const Region& x : s) min_right = std::min(min_right, x.right);
  return PartitionedFilter(
      "follows", r, [min_right](const Region& x) { return x.left > min_right; },
      obs::OpCounters{1, 1, 0},
      obs::OpCounters{0, static_cast<int64_t>(s.size()), 0}, cfg);
}

RegionSet ParallelSelectByTokens(const RegionSet& r,
                                 const std::vector<Token>& tokens,
                                 const ParallelConfig& cfg) {
  if (BelowGate(cfg, r.size() + tokens.size())) {
    return SelectByTokens(r, tokens);
  }
  if (DegradeKernel("select", cfg)) return SelectByTokens(r, tokens);
  std::vector<Region> as_regions;
  as_regions.reserve(tokens.size());
  for (const Token& t : tokens) as_regions.push_back(Region{t.left, t.right});
  ContainmentIndex index(RegionSet::FromUnsorted(std::move(as_regions)));
  return PartitionedFilter(
      "select", r,
      [&index](const Region& x) { return index.ExistsContainedIn(x); },
      obs::OpCounters{ProbeDepth(tokens.size()), 0, 1}, obs::OpCounters{},
      cfg);
}

}  // namespace exec
}  // namespace regal
