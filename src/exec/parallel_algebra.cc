#include "exec/parallel_algebra.h"

#include <algorithm>
#include <bit>

#include "core/algebra.h"
#include "core/algebra_kernels.h"
#include "obs/metrics.h"
#include "safety/failpoint.h"

namespace regal {
namespace exec {

namespace {

// Chunks smaller than this are not worth a task dispatch.
constexpr size_t kMinChunkRows = 2048;

ThreadPool& PoolOf(const ParallelConfig& cfg) {
  return cfg.pool != nullptr ? *cfg.pool : ThreadPool::Default();
}

int PartitionCount(const ParallelConfig& cfg, size_t rows) {
  int lanes = cfg.max_partitions > 0 ? cfg.max_partitions
                                     : PoolOf(cfg).num_threads();
  size_t by_rows = rows / kMinChunkRows;
  if (by_rows < 1) by_rows = 1;
  return static_cast<int>(
      std::min(static_cast<size_t>(lanes), by_rows));
}

void CountParallelDispatch(const char* op) {
  obs::Registry::Default()
      .GetCounter("regal_exec_parallel_ops_total", {{"op", op}})
      ->Increment();
}

// Degradation failpoint shared by every kernel: when "exec.kernel.degrade"
// fires, the kernel runs its sequential twin instead of partitioning —
// same answer (the kernels are bit-identical to the sequential operators),
// recorded so the fallback is observable.
bool DegradeKernel(const char* op, const ParallelConfig& cfg) {
  if (!safety::FailpointFires("exec.kernel.degrade")) return false;
  obs::Registry::Default()
      .GetCounter("regal_safety_kernel_fallbacks_total", {{"op", op}})
      ->Increment();
  // The per-query tally feeds the explain-analyze profile; the labeled
  // global counter above is fleet metrics only.
  if (cfg.fallbacks != nullptr) {
    cfg.fallbacks->fetch_add(1, std::memory_order_relaxed);
  }
  return true;
}

// Same per-probe comparison charge as core/algebra.cc.
int64_t ProbeDepth(size_t n) {
  return static_cast<int64_t>(std::bit_width(n) + 1);
}

std::vector<Region> Concatenate(std::vector<std::vector<Region>>* chunks) {
  size_t total = 0;
  for (const auto& c : *chunks) total += c.size();
  std::vector<Region> out;
  out.reserve(total);
  for (auto& c : *chunks) out.insert(out.end(), c.begin(), c.end());
  return out;
}

using MergeKernel = void (*)(const Region*, const Region*, const Region*,
                             const Region*, std::vector<Region>*,
                             obs::OpCounters*);

// Splits R at index boundaries, binary-searches the matching value window of
// S for every chunk (chunk k owns the endpoint interval
// [R[cut_k], R[cut_{k+1}})), and runs `kernel` per chunk on the pool. Chunk
// outputs cover disjoint, increasing endpoint intervals, so concatenation is
// the full sorted merge.
RegionSet PartitionedMerge(const char* op, const RegionSet& r,
                           const RegionSet& s, MergeKernel kernel,
                           const ParallelConfig& cfg) {
  const Region* rd = r.regions().data();
  const Region* sd = s.regions().data();
  const int parts = PartitionCount(cfg, r.size());
  if (parts <= 1) {
    std::vector<Region> out;
    out.reserve(r.size() + s.size());
    obs::OpCounters c;
    kernel(rd, rd + r.size(), sd, sd + s.size(), &out, &c);
    kernels::FlushCounters(c);
    return RegionSet::FromSortedUnique(std::move(out));
  }
  const size_t np = static_cast<size_t>(parts);
  std::vector<size_t> rcut(np + 1), scut(np + 1);
  RegionDocumentOrder less;
  rcut[0] = 0;
  scut[0] = 0;
  rcut[np] = r.size();
  scut[np] = s.size();
  for (size_t k = 1; k < np; ++k) {
    rcut[k] = k * r.size() / np;
    scut[k] = static_cast<size_t>(
        std::lower_bound(sd, sd + s.size(), rd[rcut[k]], less) - sd);
  }
  std::vector<std::vector<Region>> outs(np);
  std::vector<obs::OpCounters> counters(np);
  PoolOf(cfg).ParallelFor(np, [&](size_t k) {
    // Chunk-granularity checkpoint: a cancelled/over-deadline query skips
    // the remaining chunks. The evaluator re-checks the context at the next
    // operator boundary — and once more before Evaluate() returns, which
    // covers a kernel running under the root operator — and discards this
    // (partial) result.
    if (cfg.ctx != nullptr && cfg.ctx->ShouldAbort()) return;
    outs[k].reserve((rcut[k + 1] - rcut[k]) + (scut[k + 1] - scut[k]));
    kernel(rd + rcut[k], rd + rcut[k + 1], sd + scut[k], sd + scut[k + 1],
           &outs[k], &counters[k]);
  });
  obs::OpCounters total;
  for (const obs::OpCounters& c : counters) total.Add(c);
  kernels::FlushCounters(total);
  CountParallelDispatch(op);
  return RegionSet::FromSortedUnique(Concatenate(&outs));
}

// Analytic counter charge of a partitioned filter over R: `per_element`
// per probed element (matching the sequential operators) plus `fixed` per
// call. The charge is independent of how R is chunked, so sequential and
// partitioned runs report identical counters.
obs::OpCounters FilterCharge(size_t rows, const obs::OpCounters& per_element,
                             const obs::OpCounters& fixed) {
  obs::OpCounters total = fixed;
  total.comparisons += per_element.comparisons * static_cast<int64_t>(rows);
  total.merge_steps += per_element.merge_steps * static_cast<int64_t>(rows);
  total.index_probes += per_element.index_probes * static_cast<int64_t>(rows);
  return total;
}

// Partitioned batched-probe filter of R: chunk k runs `probe` (one of the
// ContainmentIndex::Probe* batch predicates) over R[cut_k, cut_{k+1}) into a
// chunk-local keep mask and collects the marked elements. The probes batch
// their binary searches through the SIMD lower-bound kernel; chunking only
// changes tile boundaries, never the per-element answers.
template <typename Probe>
RegionSet PartitionedProbeFilter(const char* op, const RegionSet& r,
                                 Probe probe,
                                 const obs::OpCounters& per_element,
                                 const obs::OpCounters& fixed,
                                 const ParallelConfig& cfg) {
  const Region* rd = r.regions().data();
  const obs::OpCounters total = FilterCharge(r.size(), per_element, fixed);
  const int parts = PartitionCount(cfg, r.size());
  if (parts <= 1) {
    std::vector<unsigned char> keep(r.size());
    probe(rd, r.size(), keep.data());
    std::vector<Region> out;
    for (size_t i = 0; i < r.size(); ++i) {
      if (keep[i]) out.push_back(rd[i]);
    }
    kernels::FlushCounters(total);
    return RegionSet::FromSortedUnique(std::move(out));
  }
  const size_t np = static_cast<size_t>(parts);
  std::vector<std::vector<Region>> outs(np);
  PoolOf(cfg).ParallelFor(np, [&](size_t k) {
    if (cfg.ctx != nullptr && cfg.ctx->ShouldAbort()) return;
    const size_t begin = k * r.size() / np;
    const size_t end = (k + 1) * r.size() / np;
    std::vector<unsigned char> keep(end - begin);
    probe(rd + begin, end - begin, keep.data());
    for (size_t i = begin; i < end; ++i) {
      if (keep[i - begin]) outs[k].push_back(rd[i]);
    }
  });
  kernels::FlushCounters(total);
  CountParallelDispatch(op);
  return RegionSet::FromSortedUnique(Concatenate(&outs));
}

// Partitioned endpoint filter of R behind Precedes/Follows: chunk k runs the
// dispatched left-packing filter kernel over its slice straight into its
// output vector. Order-preserving per chunk, so concatenation is the full
// filtered set.
using FilterKernel = void (*)(const Region*, size_t, Offset,
                              std::vector<Region>*);

RegionSet PartitionedEndpointFilter(const char* op, const RegionSet& r,
                                    FilterKernel kernel, Offset bound,
                                    const obs::OpCounters& per_element,
                                    const obs::OpCounters& fixed,
                                    const ParallelConfig& cfg) {
  const Region* rd = r.regions().data();
  const obs::OpCounters total = FilterCharge(r.size(), per_element, fixed);
  const int parts = PartitionCount(cfg, r.size());
  if (parts <= 1) {
    std::vector<Region> out;
    kernel(rd, r.size(), bound, &out);
    kernels::FlushCounters(total);
    return RegionSet::FromSortedUnique(std::move(out));
  }
  const size_t np = static_cast<size_t>(parts);
  std::vector<std::vector<Region>> outs(np);
  PoolOf(cfg).ParallelFor(np, [&](size_t k) {
    if (cfg.ctx != nullptr && cfg.ctx->ShouldAbort()) return;
    const size_t begin = k * r.size() / np;
    const size_t end = (k + 1) * r.size() / np;
    kernel(rd + begin, end - begin, bound, &outs[k]);
  });
  kernels::FlushCounters(total);
  CountParallelDispatch(op);
  return RegionSet::FromSortedUnique(Concatenate(&outs));
}

bool BelowGate(const ParallelConfig& cfg, size_t rows) {
  return rows < cfg.min_rows;
}

}  // namespace

RegionSet ParallelUnion(const RegionSet& r, const RegionSet& s,
                        const ParallelConfig& cfg) {
  if (BelowGate(cfg, r.size() + s.size())) return Union(r, s);
  if (DegradeKernel("union", cfg)) return Union(r, s);
  // Union is symmetric; partition the longer operand for balance.
  const RegionSet& a = r.size() >= s.size() ? r : s;
  const RegionSet& b = r.size() >= s.size() ? s : r;
  return PartitionedMerge("union", a, b, &kernels::UnionSpan, cfg);
}

RegionSet ParallelIntersect(const RegionSet& r, const RegionSet& s,
                            const ParallelConfig& cfg) {
  if (BelowGate(cfg, r.size() + s.size())) return Intersect(r, s);
  if (DegradeKernel("intersect", cfg)) return Intersect(r, s);
  const RegionSet& a = r.size() >= s.size() ? r : s;
  const RegionSet& b = r.size() >= s.size() ? s : r;
  return PartitionedMerge("intersect", a, b, &kernels::IntersectSpan, cfg);
}

RegionSet ParallelDifference(const RegionSet& r, const RegionSet& s,
                             const ParallelConfig& cfg) {
  if (BelowGate(cfg, r.size() + s.size())) return Difference(r, s);
  if (DegradeKernel("difference", cfg)) return Difference(r, s);
  return PartitionedMerge("difference", r, s, &kernels::DifferenceSpan, cfg);
}

RegionSet ParallelIncluding(const RegionSet& r, const RegionSet& s,
                            const ParallelConfig& cfg) {
  if (BelowGate(cfg, r.size() + s.size())) return Including(r, s);
  if (DegradeKernel("including", cfg)) return Including(r, s);
  ContainmentIndex index(s);
  return PartitionedProbeFilter(
      "including", r,
      [&index](const Region* b, size_t n, unsigned char* keep) {
        index.ProbeIncludedIn(b, n, keep);
      },
      obs::OpCounters{ProbeDepth(s.size()), 0, 1}, obs::OpCounters{}, cfg);
}

RegionSet ParallelIncluded(const RegionSet& r, const RegionSet& s,
                           const ParallelConfig& cfg) {
  if (BelowGate(cfg, r.size() + s.size())) return Included(r, s);
  if (DegradeKernel("included", cfg)) return Included(r, s);
  ContainmentIndex index(s);
  return PartitionedProbeFilter(
      "included", r,
      [&index](const Region* b, size_t n, unsigned char* keep) {
        index.ProbeIncluding(b, n, keep);
      },
      obs::OpCounters{ProbeDepth(s.size()), 0, 1}, obs::OpCounters{}, cfg);
}

RegionSet ParallelPrecedes(const RegionSet& r, const RegionSet& s,
                           const ParallelConfig& cfg) {
  if (BelowGate(cfg, r.size() + s.size())) return Precedes(r, s);
  if (DegradeKernel("precedes", cfg)) return Precedes(r, s);
  if (s.empty()) {
    kernels::FlushCounters(
        obs::OpCounters{static_cast<int64_t>(r.size()),
                        static_cast<int64_t>(r.size()), 0});
    return RegionSet();
  }
  const Offset max_left = s[s.size() - 1].left;
  return PartitionedEndpointFilter("precedes", r, &kernels::FilterRightBefore,
                                   max_left, obs::OpCounters{1, 1, 0},
                                   obs::OpCounters{0, 1, 0}, cfg);
}

RegionSet ParallelFollows(const RegionSet& r, const RegionSet& s,
                          const ParallelConfig& cfg) {
  if (BelowGate(cfg, r.size() + s.size())) return Follows(r, s);
  if (DegradeKernel("follows", cfg)) return Follows(r, s);
  if (s.empty()) {
    kernels::FlushCounters(
        obs::OpCounters{static_cast<int64_t>(r.size()),
                        static_cast<int64_t>(r.size() + s.size()), 0});
    return RegionSet();
  }
  const Offset min_right = kernels::MinRightEndpoint(s.regions().data(), s.size());
  return PartitionedEndpointFilter(
      "follows", r, &kernels::FilterLeftAfter, min_right,
      obs::OpCounters{1, 1, 0},
      obs::OpCounters{0, static_cast<int64_t>(s.size()), 0}, cfg);
}

RegionSet ParallelSelectByTokens(const RegionSet& r,
                                 const std::vector<Token>& tokens,
                                 const ParallelConfig& cfg) {
  if (BelowGate(cfg, r.size() + tokens.size())) {
    return SelectByTokens(r, tokens);
  }
  if (DegradeKernel("select", cfg)) return SelectByTokens(r, tokens);
  std::vector<Region> as_regions;
  as_regions.reserve(tokens.size());
  for (const Token& t : tokens) as_regions.push_back(Region{t.left, t.right});
  ContainmentIndex index(RegionSet::FromUnsorted(std::move(as_regions)));
  return PartitionedProbeFilter(
      "select", r,
      [&index](const Region* b, size_t n, unsigned char* keep) {
        index.ProbeContainedIn(b, n, keep);
      },
      obs::OpCounters{ProbeDepth(tokens.size()), 0, 1}, obs::OpCounters{},
      cfg);
}

}  // namespace exec
}  // namespace regal
