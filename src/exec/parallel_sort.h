#ifndef REGAL_EXEC_PARALLEL_SORT_H_
#define REGAL_EXEC_PARALLEL_SORT_H_

#include <algorithm>
#include <cstddef>
#include <vector>

#include "exec/thread_pool.h"

namespace regal {
namespace exec {

/// Parallel merge sort: splits `v` into one run per pool lane, sorts the
/// runs concurrently with std::sort, then merges pairs of runs in parallel
/// rounds through a temp buffer. With a strict total order (unique keys) the
/// result is identical to std::sort for any lane count; with ties it is a
/// valid sort (std::merge takes from the left run first).
///
/// Falls back to plain std::sort when `v` is short, the pool has one lane,
/// or `pool` is null.
template <typename T, typename Comp>
void ParallelSort(std::vector<T>* v, Comp comp, ThreadPool* pool,
                  size_t min_size = size_t{1} << 15) {
  const size_t n = v->size();
  const int lanes = pool != nullptr ? pool->num_threads() : 1;
  if (n < min_size || lanes <= 1) {
    std::sort(v->begin(), v->end(), comp);
    return;
  }
  size_t parts = static_cast<size_t>(lanes);
  if (parts > n / (min_size / 4) + 1) parts = n / (min_size / 4) + 1;
  if (parts <= 1) {
    std::sort(v->begin(), v->end(), comp);
    return;
  }

  std::vector<size_t> bounds(parts + 1);
  for (size_t k = 0; k <= parts; ++k) bounds[k] = k * n / parts;
  pool->ParallelFor(parts, [&](size_t k) {
    std::sort(v->begin() + static_cast<ptrdiff_t>(bounds[k]),
              v->begin() + static_cast<ptrdiff_t>(bounds[k + 1]), comp);
  });

  std::vector<T> buffer(n);
  std::vector<T>* src = v;
  std::vector<T>* dst = &buffer;
  while (bounds.size() > 2) {
    const size_t runs = bounds.size() - 1;
    const size_t pairs = runs / 2;
    std::vector<size_t> next;
    next.reserve(runs / 2 + 2);
    next.push_back(0);
    for (size_t p = 0; p < pairs; ++p) next.push_back(bounds[2 * p + 2]);
    if (runs % 2 == 1) next.push_back(bounds[runs]);
    pool->ParallelFor(pairs, [&](size_t p) {
      std::merge(src->begin() + static_cast<ptrdiff_t>(bounds[2 * p]),
                 src->begin() + static_cast<ptrdiff_t>(bounds[2 * p + 1]),
                 src->begin() + static_cast<ptrdiff_t>(bounds[2 * p + 1]),
                 src->begin() + static_cast<ptrdiff_t>(bounds[2 * p + 2]),
                 dst->begin() + static_cast<ptrdiff_t>(bounds[2 * p]), comp);
    });
    if (runs % 2 == 1) {
      std::copy(src->begin() + static_cast<ptrdiff_t>(bounds[runs - 1]),
                src->begin() + static_cast<ptrdiff_t>(bounds[runs]),
                dst->begin() + static_cast<ptrdiff_t>(bounds[runs - 1]));
    }
    std::swap(src, dst);
    bounds = std::move(next);
  }
  if (src != v) {
    std::copy(src->begin(), src->end(), v->begin());
  }
}

}  // namespace exec
}  // namespace regal

#endif  // REGAL_EXEC_PARALLEL_SORT_H_
