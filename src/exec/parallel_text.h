#ifndef REGAL_EXEC_PARALLEL_TEXT_H_
#define REGAL_EXEC_PARALLEL_TEXT_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "exec/thread_pool.h"
#include "text/tokenizer.h"

namespace regal {
namespace exec {

/// Parallel scan phases of the index builders. Both helpers split the text
/// into per-lane chunks whose boundaries are snapped forward to the next
/// non-identifier byte, so no token straddles a cut — each chunk tokenizes
/// exactly the tokens the sequential pass would find there, and the
/// concatenation (chunks are in text order) is byte-identical to the
/// sequential result.

/// Tokenize(text) distributed over `pool`. Null pool or short text runs the
/// sequential tokenizer.
std::vector<Token> ParallelTokenize(std::string_view text, ThreadPool* pool,
                                    size_t min_bytes = size_t{1} << 16);

/// The vocabulary -> postings map of InvertedWordIndex: per-chunk maps built
/// concurrently, then merged in chunk (= text) order so every postings list
/// stays sorted by occurrence. `num_tokens` receives the total token count.
std::map<std::string, std::vector<Token>> ParallelPostings(
    std::string_view text, ThreadPool* pool, int64_t* num_tokens,
    size_t min_bytes = size_t{1} << 16);

}  // namespace exec
}  // namespace regal

#endif  // REGAL_EXEC_PARALLEL_TEXT_H_
