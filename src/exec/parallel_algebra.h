#ifndef REGAL_EXEC_PARALLEL_ALGEBRA_H_
#define REGAL_EXEC_PARALLEL_ALGEBRA_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/region_set.h"
#include "exec/thread_pool.h"
#include "safety/context.h"
#include "text/tokenizer.h"

namespace regal {
namespace exec {

/// Tuning for the partitioned operator kernels.
struct ParallelConfig {
  /// Pool to run on; nullptr means ThreadPool::Default().
  ThreadPool* pool = nullptr;
  /// Combined operand rows below which the kernels fall straight through to
  /// the sequential operators (partitioning overhead would dominate).
  size_t min_rows = 1u << 14;
  /// Cap on partitions; 0 means the pool's lane count.
  int max_partitions = 0;
  /// Governance state polled between chunks: once ShouldAbort() is true the
  /// remaining chunks bail without producing output. The caller (the
  /// evaluator) must then surface ctx->Check() and discard the partial
  /// result — the kernels never fabricate an answer after an abort.
  const safety::QueryContext* ctx = nullptr;
  /// Bumped once per kernel call that degrades to its sequential twin;
  /// nullptr means untracked. Per-query (unlike the global metrics counter)
  /// so concurrent queries never attribute each other's fallbacks.
  std::atomic<int64_t>* fallbacks = nullptr;
};

/// Data-parallel versions of the hot region-algebra operators. Each one
/// partitions the left operand into contiguous document-order chunks, pairs
/// every chunk with the binary-searched window of the right operand covering
/// the same endpoint range, runs the *same* span kernels / probe predicates
/// as the sequential operators per chunk on the pool, and concatenates the
/// per-chunk outputs. Chunks are endpoint-ordered, so the concatenation is
/// sorted and the result is bit-identical to the sequential operator —
/// enforced by tests/parallel_exec_test.cpp across thread counts.
///
/// Operator work counters are tallied per chunk and flushed to the calling
/// thread's obs sink once, so `explain analyze` totals match the sequential
/// path. Inputs below cfg.min_rows short-circuit to the sequential operator.
RegionSet ParallelUnion(const RegionSet& r, const RegionSet& s,
                        const ParallelConfig& cfg = {});
RegionSet ParallelIntersect(const RegionSet& r, const RegionSet& s,
                            const ParallelConfig& cfg = {});
RegionSet ParallelDifference(const RegionSet& r, const RegionSet& s,
                             const ParallelConfig& cfg = {});
RegionSet ParallelIncluding(const RegionSet& r, const RegionSet& s,
                            const ParallelConfig& cfg = {});
RegionSet ParallelIncluded(const RegionSet& r, const RegionSet& s,
                           const ParallelConfig& cfg = {});
RegionSet ParallelPrecedes(const RegionSet& r, const RegionSet& s,
                           const ParallelConfig& cfg = {});
RegionSet ParallelFollows(const RegionSet& r, const RegionSet& s,
                          const ParallelConfig& cfg = {});
RegionSet ParallelSelectByTokens(const RegionSet& r,
                                 const std::vector<Token>& tokens,
                                 const ParallelConfig& cfg = {});

}  // namespace exec
}  // namespace regal

#endif  // REGAL_EXEC_PARALLEL_ALGEBRA_H_
