#include "logic/cnf.h"

#include <algorithm>

namespace regal {

std::string Cnf::ToString() const {
  std::string out;
  for (size_t i = 0; i < clauses.size(); ++i) {
    if (i > 0) out += " & ";
    out += "(";
    for (size_t j = 0; j < clauses[i].size(); ++j) {
      if (j > 0) out += " | ";
      Literal lit = clauses[i][j];
      if (lit < 0) out += "!";
      out += "x" + std::to_string(lit < 0 ? -lit : lit);
    }
    out += ")";
  }
  return out;
}

bool Cnf::IsSatisfiedBy(const std::vector<bool>& assignment) const {
  for (const Clause& clause : clauses) {
    bool satisfied = false;
    for (Literal lit : clause) {
      int v = lit < 0 ? -lit : lit;
      bool value = assignment[static_cast<size_t>(v)];
      if ((lit > 0 && value) || (lit < 0 && !value)) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied) return false;
  }
  return true;
}

Cnf RandomKCnf(Rng& rng, int num_vars, int num_clauses, int k) {
  Cnf cnf;
  cnf.num_vars = num_vars;
  // A clause needs k distinct variables; clamp rather than spin.
  k = std::min(k, num_vars);
  for (int c = 0; c < num_clauses; ++c) {
    Clause clause;
    std::vector<bool> used(static_cast<size_t>(num_vars + 1), false);
    for (int j = 0; j < k; ++j) {
      int v;
      do {
        v = static_cast<int>(1 + rng.Below(static_cast<uint64_t>(num_vars)));
      } while (used[static_cast<size_t>(v)]);
      used[static_cast<size_t>(v)] = true;
      clause.push_back(rng.Chance(0.5) ? v : -v);
    }
    cnf.clauses.push_back(std::move(clause));
  }
  return cnf;
}

bool BruteForceSat(const Cnf& cnf) {
  const uint64_t total = uint64_t{1} << cnf.num_vars;
  std::vector<bool> assignment(static_cast<size_t>(cnf.num_vars + 1), false);
  for (uint64_t mask = 0; mask < total; ++mask) {
    for (int v = 1; v <= cnf.num_vars; ++v) {
      assignment[static_cast<size_t>(v)] = (mask >> (v - 1)) & 1;
    }
    if (cnf.IsSatisfiedBy(assignment)) return true;
  }
  return false;
}

}  // namespace regal
