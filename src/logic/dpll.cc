#include "logic/dpll.h"

#include <algorithm>

namespace regal {

namespace {

enum class Value : int8_t { kUnset = 0, kTrue = 1, kFalse = 2 };

class Solver {
 public:
  explicit Solver(const Cnf& cnf, DpllStats* stats)
      : cnf_(cnf),
        values_(static_cast<size_t>(cnf.num_vars + 1), Value::kUnset),
        stats_(stats) {}

  std::optional<std::vector<bool>> Solve() {
    if (!Search()) return std::nullopt;
    std::vector<bool> assignment(static_cast<size_t>(cnf_.num_vars + 1), false);
    for (int v = 1; v <= cnf_.num_vars; ++v) {
      assignment[static_cast<size_t>(v)] = values_[static_cast<size_t>(v)] != Value::kFalse;
    }
    return assignment;
  }

 private:
  Value LiteralValue(Literal lit) const {
    Value v = values_[static_cast<size_t>(lit < 0 ? -lit : lit)];
    if (v == Value::kUnset) return Value::kUnset;
    bool is_true = (v == Value::kTrue) == (lit > 0);
    return is_true ? Value::kTrue : Value::kFalse;
  }

  void Assign(Literal lit) {
    values_[static_cast<size_t>(lit < 0 ? -lit : lit)] =
        lit > 0 ? Value::kTrue : Value::kFalse;
    trail_.push_back(lit < 0 ? -lit : lit);
  }

  void UnwindTo(size_t mark) {
    while (trail_.size() > mark) {
      values_[static_cast<size_t>(trail_.back())] = Value::kUnset;
      trail_.pop_back();
    }
  }

  // Repeatedly assigns forced (unit) literals. False on conflict.
  bool Propagate() {
    bool changed = true;
    while (changed) {
      changed = false;
      for (const Clause& clause : cnf_.clauses) {
        int unset_count = 0;
        Literal unit = 0;
        bool satisfied = false;
        for (Literal lit : clause) {
          Value v = LiteralValue(lit);
          if (v == Value::kTrue) {
            satisfied = true;
            break;
          }
          if (v == Value::kUnset) {
            ++unset_count;
            unit = lit;
          }
        }
        if (satisfied) continue;
        if (unset_count == 0) return false;  // Conflict.
        if (unset_count == 1) {
          Assign(unit);
          if (stats_ != nullptr) ++stats_->unit_propagations;
          changed = true;
        }
      }
    }
    return true;
  }

  // Assigns variables occurring with only one polarity among clauses not
  // yet satisfied.
  void PureLiterals() {
    std::vector<int8_t> polarity(static_cast<size_t>(cnf_.num_vars + 1), 0);
    for (const Clause& clause : cnf_.clauses) {
      bool satisfied = false;
      for (Literal lit : clause) {
        if (LiteralValue(lit) == Value::kTrue) {
          satisfied = true;
          break;
        }
      }
      if (satisfied) continue;
      for (Literal lit : clause) {
        if (LiteralValue(lit) != Value::kUnset) continue;
        int v = lit < 0 ? -lit : lit;
        polarity[static_cast<size_t>(v)] |= lit > 0 ? 1 : 2;
      }
    }
    for (int v = 1; v <= cnf_.num_vars; ++v) {
      if (values_[static_cast<size_t>(v)] != Value::kUnset) continue;
      if (polarity[static_cast<size_t>(v)] == 1) Assign(v);
      if (polarity[static_cast<size_t>(v)] == 2) Assign(-v);
    }
  }

  int PickBranchVariable() const {
    // Most-occurring unset variable in unsatisfied clauses.
    std::vector<int> count(static_cast<size_t>(cnf_.num_vars + 1), 0);
    for (const Clause& clause : cnf_.clauses) {
      bool satisfied = false;
      for (Literal lit : clause) {
        if (LiteralValue(lit) == Value::kTrue) {
          satisfied = true;
          break;
        }
      }
      if (satisfied) continue;
      for (Literal lit : clause) {
        if (LiteralValue(lit) == Value::kUnset) {
          ++count[static_cast<size_t>(lit < 0 ? -lit : lit)];
        }
      }
    }
    int best = 0;
    for (int v = 1; v <= cnf_.num_vars; ++v) {
      if (values_[static_cast<size_t>(v)] == Value::kUnset &&
          (best == 0 || count[static_cast<size_t>(v)] >
                            count[static_cast<size_t>(best)])) {
        best = v;
      }
    }
    return best;
  }

  bool Search() {
    if (!Propagate()) return false;
    PureLiterals();
    if (!Propagate()) return false;
    int v = PickBranchVariable();
    if (v == 0) return true;  // All variables assigned, no conflict.
    if (stats_ != nullptr) ++stats_->decisions;
    for (Literal lit : {v, -v}) {
      size_t mark = trail_.size();
      Assign(lit);
      if (Search()) return true;
      UnwindTo(mark);
    }
    return false;
  }

  const Cnf& cnf_;
  std::vector<Value> values_;
  std::vector<int> trail_;
  DpllStats* stats_;
};

}  // namespace

std::optional<std::vector<bool>> DpllSolve(const Cnf& cnf, DpllStats* stats) {
  Solver solver(cnf, stats);
  return solver.Solve();
}

}  // namespace regal
