#ifndef REGAL_LOGIC_DPLL_H_
#define REGAL_LOGIC_DPLL_H_

#include <optional>
#include <vector>

#include "logic/cnf.h"

namespace regal {

/// Statistics from one DPLL run.
struct DpllStats {
  int64_t decisions = 0;
  int64_t unit_propagations = 0;
};

/// A from-scratch DPLL SAT solver with unit propagation and pure-literal
/// elimination. Returns a satisfying assignment (indexed 1..num_vars) or
/// nullopt when unsatisfiable. The cross-check oracle for the Theorem 3.5
/// emptiness reduction, and the "real solver" baseline in bench_emptiness.
std::optional<std::vector<bool>> DpllSolve(const Cnf& cnf,
                                           DpllStats* stats = nullptr);

}  // namespace regal

#endif  // REGAL_LOGIC_DPLL_H_
