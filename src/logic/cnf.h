#ifndef REGAL_LOGIC_CNF_H_
#define REGAL_LOGIC_CNF_H_

#include <string>
#include <vector>

#include "util/random.h"

namespace regal {

/// A literal: variable index (1-based) with sign. +v is the positive
/// literal, -v the negated one. 0 is invalid.
using Literal = int;

/// A clause: a disjunction of literals.
using Clause = std::vector<Literal>;

/// A CNF formula over variables 1..num_vars.
struct Cnf {
  int num_vars = 0;
  std::vector<Clause> clauses;

  /// "(x1 | !x2 | x3) & (...)" for diagnostics.
  std::string ToString() const;

  /// True iff `assignment` (indexed 1..num_vars) satisfies every clause.
  bool IsSatisfiedBy(const std::vector<bool>& assignment) const;
};

/// A uniformly random k-CNF with the given shape. Used by the emptiness
/// benchmarks (near the m/n ≈ 4.2 threshold random 3-CNF is hard).
Cnf RandomKCnf(Rng& rng, int num_vars, int num_clauses, int k = 3);

/// Exhaustive satisfiability check (2^n); the test oracle for DPLL.
bool BruteForceSat(const Cnf& cnf);

}  // namespace regal

#endif  // REGAL_LOGIC_CNF_H_
