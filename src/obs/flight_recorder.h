#ifndef REGAL_OBS_FLIGHT_RECORDER_H_
#define REGAL_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "obs/log.h"
#include "obs/trace.h"

namespace regal {
namespace obs {

/// One completed query as the flight recorder keeps it: identity, outcome,
/// timing, and a plan tree for /tracez. `plan` is the live execution trace
/// when one was collected (explain analyze, or a sampled query — sampling is
/// decided before execution precisely so the trace exists); otherwise an
/// estimate-only skeleton of the executed expression, which still renders
/// with FormatSpanTree.
struct QueryRecord {
  uint64_t query_id = 0;
  int64_t ts_ms = 0;  // Wall-clock completion time (Unix millis).
  std::string query;  // Executed expression, query-language rendering.
  bool ok = true;
  std::string status;  // Status message when !ok, empty otherwise.
  std::string status_code = "ok";  // "ok", "deadline_exceeded", ...
  double elapsed_ms = 0;
  int64_t rows_out = 0;
  bool slow = false;     // elapsed_ms >= the recorder's slow threshold.
  bool sampled = false;  // Kept by the 1-in-N sampler.
  bool traced = false;   // `plan` is a live trace, not a skeleton.
  Span plan;

  /// The record as one JSON object (plan included) — the /tracez payload.
  std::string Json() const;
};

struct FlightRecorderOptions {
  /// Ring capacity: the retroactive-diagnosis window. Records beyond it
  /// evict oldest-first.
  size_t capacity = 256;
  /// Queries at or above this wall time are kept unconditionally (and
  /// logged). <= 0 keeps every query — the "record everything" debug mode.
  double slow_threshold_ms = 100.0;
  /// Keep every Nth completed query regardless of speed, so the recorder
  /// always holds a background sample of healthy traffic; 0 disables
  /// sampling. Sampling is decided from the query id before execution, so
  /// sampled queries can carry a full trace.
  uint32_t sample_period = 16;
  /// Slow and errored queries are echoed here as structured records (the
  /// slow-query log). Null falls back to EventLog::Default().
  EventLog* log = nullptr;
};

/// The always-on flight recorder: a bounded, thread-safe ring of completed
/// QueryRecords. Every slow or errored query is kept unconditionally; the
/// rest are sampled 1-in-N. Query ids are assigned monotonically from here
/// (NextQueryId), so records, log lines and metrics correlate.
///
/// Exported metrics: regal_recorder_kept_total{reason=slow|error|sampled},
/// regal_recorder_skipped_total, regal_recorder_entries (gauge).
///
/// The cost when a query is *not* kept is one atomic increment (id), one
/// modulo (sampling), and one mutex-free threshold compare — the recorder's
/// contribution to the <2% always-on budget (see bench/bench_obs.cpp).
class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderOptions options = {});
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// The process-wide recorder all engines share unless configured apart.
  static FlightRecorder& Default();

  /// Draws the next monotonic query id (first id is 1; 0 means "no query").
  uint64_t NextQueryId();

  /// Pre-execution sampling decision for `query_id` (deterministic 1-in-N).
  bool ShouldSample(uint64_t query_id) const;

  /// True when a record with these properties would be kept.
  bool WouldKeep(bool ok, double elapsed_ms, bool sampled) const;

  /// Applies the keep policy: stores the record (evicting oldest first) and
  /// echoes slow/errored queries to the log, or counts it skipped. Fills
  /// record.slow from the threshold. Returns whether it was kept.
  bool Record(QueryRecord record);

  /// Most-recent-first copy of the ring.
  std::vector<QueryRecord> Snapshot() const;

  size_t entries() const;
  uint64_t last_query_id() const {
    return next_id_.load(std::memory_order_relaxed);
  }
  size_t capacity() const { return options_.capacity; }

  // The two tunables live in atomics so operators can adjust a running
  // recorder without racing in-flight keep decisions.
  double slow_threshold_ms() const {
    return slow_threshold_ms_.load(std::memory_order_relaxed);
  }
  void set_slow_threshold_ms(double ms) {
    slow_threshold_ms_.store(ms, std::memory_order_relaxed);
  }
  uint32_t sample_period() const {
    return sample_period_.load(std::memory_order_relaxed);
  }
  void set_sample_period(uint32_t period) {
    sample_period_.store(period, std::memory_order_relaxed);
  }

  /// Drops all records (tests / operator reset via the admin endpoint).
  void Clear();

 private:
  FlightRecorderOptions options_;
  std::atomic<double> slow_threshold_ms_;
  std::atomic<uint32_t> sample_period_;
  std::atomic<uint64_t> next_id_{0};
  mutable std::mutex mu_;
  std::deque<QueryRecord> ring_;  // Front = oldest.
};

}  // namespace obs
}  // namespace regal

#endif  // REGAL_OBS_FLIGHT_RECORDER_H_
