#include "obs/metrics.h"

#include <algorithm>
#include <cstdlib>

namespace regal {
namespace obs {

Histogram::Histogram(std::vector<double> buckets)
    : bounds_(std::move(buckets)),
      bucket_counts_(new std::atomic<int64_t>[bounds_.size() + 1]) {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    bucket_counts_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::Observe(double value) {
  size_t i =
      static_cast<size_t>(std::lower_bound(bounds_.begin(), bounds_.end(), value) -
                          bounds_.begin());
  bucket_counts_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&sum_, value);
}

std::vector<int64_t> Histogram::CumulativeBucketCounts() const {
  std::vector<int64_t> cumulative(bounds_.size() + 1);
  int64_t running = 0;
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    running += bucket_counts_[i].load(std::memory_order_relaxed);
    cumulative[i] = running;
  }
  return cumulative;
}

Registry& Registry::Default() {
  static Registry* registry = new Registry();
  return *registry;
}

std::vector<double> Registry::DefaultLatencyBucketsMs() {
  std::vector<double> buckets;
  for (double b = 0.001; b < 20000; b *= 4) buckets.push_back(b);
  return buckets;
}

std::vector<double> Registry::DefaultSizeBytesBuckets() {
  std::vector<double> buckets;
  for (double b = 1024; b <= 1024.0 * 1024.0 * 1024.0; b *= 4) {
    buckets.push_back(b);
  }
  return buckets;
}

namespace {

std::string EntryKey(const std::string& name, const Labels& labels) {
  std::string key = name;
  for (const auto& [k, v] : labels) {
    key += '\x1f';
    key += k;
    key += '\x1e';
    key += v;
  }
  return key;
}

}  // namespace

Registry::Entry* Registry::FindOrCreate(MetricSnapshot::Kind kind,
                                        const std::string& name,
                                        const Labels& labels) {
  std::string key = EntryKey(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    if (it->second.kind != kind) std::abort();  // Name reused across kinds.
    return &it->second;
  }
  Entry& entry = entries_[std::move(key)];
  entry.kind = kind;
  entry.name = name;
  entry.labels = labels;
  return &entry;
}

Counter* Registry::GetCounter(const std::string& name, const Labels& labels) {
  Entry* entry = FindOrCreate(MetricSnapshot::Kind::kCounter, name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  if (entry->counter == nullptr) entry->counter = std::make_unique<Counter>();
  return entry->counter.get();
}

Gauge* Registry::GetGauge(const std::string& name, const Labels& labels) {
  Entry* entry = FindOrCreate(MetricSnapshot::Kind::kGauge, name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  if (entry->gauge == nullptr) entry->gauge = std::make_unique<Gauge>();
  return entry->gauge.get();
}

Histogram* Registry::GetHistogram(const std::string& name, const Labels& labels,
                                  std::vector<double> buckets) {
  Entry* entry = FindOrCreate(MetricSnapshot::Kind::kHistogram, name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  if (entry->histogram == nullptr) {
    entry->histogram = std::make_unique<Histogram>(std::move(buckets));
  }
  return entry->histogram.get();
}

std::vector<MetricSnapshot> Registry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSnapshot> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    MetricSnapshot snap;
    snap.kind = entry.kind;
    snap.name = entry.name;
    snap.labels = entry.labels;
    switch (entry.kind) {
      case MetricSnapshot::Kind::kCounter:
        snap.value = static_cast<double>(entry.counter->value());
        break;
      case MetricSnapshot::Kind::kGauge:
        snap.value = entry.gauge->value();
        break;
      case MetricSnapshot::Kind::kHistogram:
        snap.count = entry.histogram->count();
        snap.sum = entry.histogram->sum();
        snap.bucket_bounds = entry.histogram->bucket_bounds();
        snap.bucket_counts = entry.histogram->CumulativeBucketCounts();
        break;
    }
    out.push_back(std::move(snap));
  }
  return out;
}

void Registry::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

}  // namespace obs
}  // namespace regal
