#include "obs/flight_recorder.h"

#include <chrono>
#include <cstdio>

#include "obs/export.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace regal {
namespace obs {

namespace {

std::string FormatMs(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", ms);
  return buf;
}

}  // namespace

std::string QueryRecord::Json() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("query_id").Int(static_cast<int64_t>(query_id));
  w.Key("ts_ms").Int(ts_ms);
  w.Key("query").String(query);
  w.Key("ok").Bool(ok);
  w.Key("status_code").String(status_code);
  if (!status.empty()) w.Key("status").String(status);
  w.Key("elapsed_ms").Double(elapsed_ms);
  w.Key("rows_out").Int(rows_out);
  w.Key("slow").Bool(slow);
  w.Key("sampled").Bool(sampled);
  w.Key("traced").Bool(traced);
  w.Key("plan");
  WriteSpanJson(plan, &w);
  w.EndObject();
  return w.Take();
}

FlightRecorder::FlightRecorder(FlightRecorderOptions options)
    : options_(std::move(options)),
      slow_threshold_ms_(options_.slow_threshold_ms),
      sample_period_(options_.sample_period) {
  if (options_.capacity == 0) options_.capacity = 1;
}

FlightRecorder& FlightRecorder::Default() {
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

uint64_t FlightRecorder::NextQueryId() {
  return next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
}

bool FlightRecorder::ShouldSample(uint64_t query_id) const {
  uint32_t period = sample_period();
  return period > 0 && query_id % period == 0;
}

bool FlightRecorder::WouldKeep(bool record_ok, double elapsed_ms,
                               bool sampled) const {
  return !record_ok || elapsed_ms >= slow_threshold_ms() || sampled;
}

bool FlightRecorder::Record(QueryRecord record) {
  Registry& registry = Registry::Default();
  record.slow = record.elapsed_ms >= slow_threshold_ms();
  if (record.ts_ms == 0) {
    record.ts_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::system_clock::now().time_since_epoch())
                       .count();
  }
  if (!record.ok || record.slow || record.sampled) {
    // Precedence for the metric reason mirrors the keep rule: errors beat
    // slowness beats sampling.
    const char* reason =
        !record.ok ? "error" : (record.slow ? "slow" : "sampled");
    registry.GetCounter("regal_recorder_kept_total", {{"reason", reason}})
        ->Increment();
    // The slow-query log: every unconditional keep is worth a line — these
    // are exactly the queries someone will ask about tomorrow morning.
    if (!record.ok || record.slow) {
      EventLog* log = options_.log != nullptr ? options_.log
                                              : &EventLog::Default();
      log->Log(!record.ok ? Severity::kError : Severity::kWarning, "recorder",
               !record.ok ? "query failed" : "slow query", record.query_id,
               {{"elapsed_ms", FormatMs(record.elapsed_ms)},
                {"rows_out", std::to_string(record.rows_out)},
                {"status_code", record.status_code},
                {"query", record.query}});
    }
    size_t entries_now;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ring_.push_back(std::move(record));
      while (ring_.size() > options_.capacity) ring_.pop_front();
      entries_now = ring_.size();
    }
    registry.GetGauge("regal_recorder_entries")
        ->Set(static_cast<double>(entries_now));
    return true;
  }
  registry.GetCounter("regal_recorder_skipped_total")->Increment();
  return false;
}

std::vector<QueryRecord> FlightRecorder::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<QueryRecord>(ring_.rbegin(), ring_.rend());
}

size_t FlightRecorder::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

void FlightRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  Registry::Default().GetGauge("regal_recorder_entries")->Set(0);
}

}  // namespace obs
}  // namespace regal
