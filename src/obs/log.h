#ifndef REGAL_OBS_LOG_H_
#define REGAL_OBS_LOG_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/timer.h"

namespace regal {
namespace obs {

enum class Severity { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// "debug" / "info" / "warning" / "error".
const char* SeverityName(Severity severity);

/// Destination for structured log lines. Write receives one complete JSONL
/// record *without* a trailing newline; the sink appends its own framing.
/// Implementations must be safe to call from concurrent threads (EventLog
/// serializes calls through its own mutex, but a sink may be shared between
/// logs).
class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual void Write(std::string_view line) = 0;
  virtual void Flush() {}
};

/// Appends lines to stderr (the default sink: always available, and the
/// conventional destination for service-side JSONL).
class StderrSink : public LogSink {
 public:
  void Write(std::string_view line) override;
  void Flush() override;
};

/// Appends lines to a file opened once at construction ("a" mode). Failure
/// to open degrades to dropping writes; ok() reports it.
class FileSink : public LogSink {
 public:
  explicit FileSink(const std::string& path);
  ~FileSink() override;
  void Write(std::string_view line) override;
  void Flush() override;
  bool ok() const { return file_ != nullptr; }

 private:
  std::mutex mu_;
  std::FILE* file_ = nullptr;
};

/// Buffers lines in memory — the test sink, and handy for /statusz-style
/// "recent events" rendering.
class CaptureSink : public LogSink {
 public:
  void Write(std::string_view line) override;
  std::vector<std::string> lines() const;
  void Clear();

 private:
  mutable std::mutex mu_;
  std::vector<std::string> lines_;
};

/// One key/value pair attached to a structured record. Values are emitted
/// as JSON strings (callers stringify numbers; the schema favors uniformity
/// over typed fields).
struct LogField {
  std::string_view key;
  std::string value;
};

struct EventLogOptions {
  /// Records below this severity are dropped before rate limiting (and not
  /// counted as dropped).
  Severity min_severity = Severity::kInfo;
  /// Token-bucket rate limit: at most this many records per second, with a
  /// burst of the same size; 0 disables limiting. Drops are counted in
  /// dropped() and regal_log_dropped_total — a telemetry layer must not be
  /// able to take down the service it watches by out-writing the disk.
  int max_records_per_second = 1000;
};

/// The always-on structured event log: JSONL records of the shape
///
///   {"ts_ms":1717000000000,"severity":"warning","subsystem":"engine",
///    "query_id":42,"message":"slow query","fields":{"elapsed_ms":"12.8"}}
///
/// ts_ms is wall-clock milliseconds since the Unix epoch; query_id is 0 for
/// records not tied to a query. Thread-safe; one mutex serializes rate
/// limiting, encoding and the sink call. Emission is O(record size) with no
/// allocation beyond the line buffer — cheap enough for per-query events,
/// though per-region paths should stay silent.
class EventLog {
 public:
  explicit EventLog(std::shared_ptr<LogSink> sink = nullptr,
                    EventLogOptions options = {});

  /// The process-wide default log (stderr sink). The engine's slow-query log
  /// and subsystem warnings land here unless redirected.
  static EventLog& Default();

  /// Replaces the sink (e.g. a FileSink at service start, a CaptureSink in
  /// tests). Thread-safe.
  void SetSink(std::shared_ptr<LogSink> sink);

  void set_min_severity(Severity severity);

  void Log(Severity severity, std::string_view subsystem,
           std::string_view message, uint64_t query_id = 0,
           std::initializer_list<LogField> fields = {});

  /// Records dropped by the rate limiter since construction.
  int64_t dropped() const;

  void Flush();

 private:
  mutable std::mutex mu_;
  std::shared_ptr<LogSink> sink_;
  EventLogOptions options_;
  // Token bucket, refilled continuously against the steady clock.
  double tokens_ = 0;
  Timer refill_timer_;
  int64_t dropped_ = 0;
};

}  // namespace obs
}  // namespace regal

#endif  // REGAL_OBS_LOG_H_
