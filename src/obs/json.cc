#include "obs/json.h"

#include <cmath>
#include <cstdio>

namespace regal {
namespace obs {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::Separate() {
  if (stack_.empty()) return;
  char& state = stack_.back();
  if (state == ':') {
    state = ',';  // Value right after a key: key already wrote the ':'.
  } else if (state == ',') {
    out_ += ',';
  } else {
    state = ',';  // First element of a fresh container.
  }
}

JsonWriter& JsonWriter::BeginObject() {
  Separate();
  out_ += '{';
  stack_ += '{';
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_ += '}';
  stack_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  Separate();
  out_ += '[';
  stack_ += '[';
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_ += ']';
  stack_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  Separate();
  out_ += '"';
  out_ += JsonEscape(key);
  out_ += "\":";
  stack_.back() = ':';
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  Separate();
  out_ += '"';
  out_ += JsonEscape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  Separate();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  Separate();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  Separate();
  if (!std::isfinite(value)) {
    out_ += "null";
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  out_ += buf;
  return *this;
}

}  // namespace obs
}  // namespace regal
