#include "obs/log.h"

#include <chrono>

#include "obs/json.h"
#include "obs/metrics.h"

namespace regal {
namespace obs {

namespace {

int64_t WallClockMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kDebug:
      return "debug";
    case Severity::kInfo:
      return "info";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

void StderrSink::Write(std::string_view line) {
  std::fwrite(line.data(), 1, line.size(), stderr);
  std::fputc('\n', stderr);
}

void StderrSink::Flush() { std::fflush(stderr); }

FileSink::FileSink(const std::string& path)
    : file_(std::fopen(path.c_str(), "a")) {}

FileSink::~FileSink() {
  if (file_ != nullptr) std::fclose(file_);
}

void FileSink::Write(std::string_view line) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return;
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fputc('\n', file_);
}

void FileSink::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) std::fflush(file_);
}

void CaptureSink::Write(std::string_view line) {
  std::lock_guard<std::mutex> lock(mu_);
  lines_.emplace_back(line);
}

std::vector<std::string> CaptureSink::lines() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lines_;
}

void CaptureSink::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lines_.clear();
}

EventLog::EventLog(std::shared_ptr<LogSink> sink, EventLogOptions options)
    : sink_(sink != nullptr ? std::move(sink)
                            : std::make_shared<StderrSink>()),
      options_(options),
      tokens_(static_cast<double>(options.max_records_per_second)) {}

EventLog& EventLog::Default() {
  static EventLog* log = new EventLog();
  return *log;
}

void EventLog::SetSink(std::shared_ptr<LogSink> sink) {
  std::lock_guard<std::mutex> lock(mu_);
  if (sink != nullptr) sink_ = std::move(sink);
}

void EventLog::set_min_severity(Severity severity) {
  std::lock_guard<std::mutex> lock(mu_);
  options_.min_severity = severity;
}

int64_t EventLog::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void EventLog::Flush() {
  std::shared_ptr<LogSink> sink;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sink = sink_;
  }
  sink->Flush();
}

void EventLog::Log(Severity severity, std::string_view subsystem,
                   std::string_view message, uint64_t query_id,
                   std::initializer_list<LogField> fields) {
  std::shared_ptr<LogSink> sink;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (static_cast<int>(severity) < static_cast<int>(options_.min_severity)) {
      return;
    }
    if (options_.max_records_per_second > 0) {
      const double limit =
          static_cast<double>(options_.max_records_per_second);
      tokens_ += refill_timer_.Seconds() * limit;
      refill_timer_.Reset();
      if (tokens_ > limit) tokens_ = limit;  // Burst cap == one second.
      if (tokens_ < 1.0) {
        ++dropped_;
        Registry::Default().GetCounter("regal_log_dropped_total")->Increment();
        return;
      }
      tokens_ -= 1.0;
    }
    sink = sink_;
  }
  // Encode and emit outside the limiter lock's critical work? The sink may
  // be shared, and records must not interleave — keep encoding cheap and
  // call the sink without holding mu_ (sinks serialize themselves).
  JsonWriter w;
  w.BeginObject();
  w.Key("ts_ms").Int(WallClockMillis());
  w.Key("severity").String(SeverityName(severity));
  w.Key("subsystem").String(subsystem);
  if (query_id != 0) w.Key("query_id").Int(static_cast<int64_t>(query_id));
  w.Key("message").String(message);
  if (fields.size() > 0) {
    w.Key("fields").BeginObject();
    for (const LogField& field : fields) w.Key(field.key).String(field.value);
    w.EndObject();
  }
  w.EndObject();
  Registry::Default()
      .GetCounter("regal_log_records_total",
                  {{"severity", SeverityName(severity)}})
      ->Increment();
  sink->Write(w.Take());
}

}  // namespace obs
}  // namespace regal
