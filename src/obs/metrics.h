#ifndef REGAL_OBS_METRICS_H_
#define REGAL_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace regal {
namespace obs {

/// Label set attached to a metric instance, e.g. {{"op", "including"}}.
/// Ordered so that equal label sets compare equal regardless of insertion
/// order.
using Labels = std::map<std::string, std::string>;

/// Monotone counter. Increment is lock-free; reading is a relaxed load.
class Counter {
 public:
  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Adds `delta` to an atomic double with a CAS loop (std::atomic<double>
/// has no fetch_add before C++20's floating-point overloads are universally
/// lock-free; the loop is portable and contention here is light).
inline void AtomicAddDouble(std::atomic<double>* target, double delta) {
  double current = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(current, current + delta,
                                        std::memory_order_relaxed)) {
  }
}

/// Gauge with last-written-wins Set() plus an atomic Add() for up-down
/// quantities (in-flight queries, active pool lanes, queue depths): unlike a
/// read-modify-write through Set(), concurrent Add(+1)/Add(-1) pairs from
/// different threads can never lose updates.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta) { AtomicAddDouble(&value_, delta); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

/// Fixed-bucket histogram: `buckets` are inclusive upper bounds in ascending
/// order, with an implicit +inf bucket at the end. Observe() is lock-free
/// (relaxed per-bucket atomics plus an atomic count and sum) — histograms
/// now sit on always-on per-query paths, so a mutex would serialize
/// concurrent queries on one latency family.
///
/// Snapshot semantics (count(), sum(), CumulativeBucketCounts()) are
/// *consistent enough* rather than linearizable: a reader racing writers may
/// see a count that differs transiently from the bucket totals or the sum
/// (each is updated by its own relaxed atomic op), but every individual
/// value is a torn-free monotone total, and once writers quiesce all three
/// agree exactly. Prometheus-style scrapes tolerate this by design.
class Histogram {
 public:
  explicit Histogram(std::vector<double> buckets);

  void Observe(double value);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& bucket_bounds() const { return bounds_; }
  /// Cumulative counts per bucket (last entry == count() once quiesced).
  std::vector<int64_t> CumulativeBucketCounts() const;

 private:
  std::vector<double> bounds_;
  // bounds_.size() + 1 slots; a plain array because atomics aren't movable.
  std::unique_ptr<std::atomic<int64_t>[]> bucket_counts_;
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0};
};

/// Point-in-time view of one metric, produced by Registry::Snapshot() for
/// the exporters.
struct MetricSnapshot {
  enum class Kind { kCounter, kGauge, kHistogram };
  Kind kind;
  std::string name;
  Labels labels;
  // Counter / gauge value (counter cast to double for uniformity).
  double value = 0;
  // Histogram payload.
  int64_t count = 0;
  double sum = 0;
  std::vector<double> bucket_bounds;
  std::vector<int64_t> bucket_counts;  // Cumulative.
};

/// Thread-safe registry of labeled metric families. Get* registers on first
/// use and returns a stable pointer — callers cache it and update without
/// touching the registry lock again. A metric name must keep one kind; Get*
/// with a mismatched kind aborts (it is a programming error, like a type
/// confusion in a schema).
class Registry {
 public:
  /// The process-wide default registry (the query engine and the bench
  /// report path record here).
  static Registry& Default();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter* GetCounter(const std::string& name, const Labels& labels = {});
  Gauge* GetGauge(const std::string& name, const Labels& labels = {});
  /// The bucket layout is fixed by the first registration of `name`.
  Histogram* GetHistogram(const std::string& name, const Labels& labels = {},
                          std::vector<double> buckets = DefaultLatencyBucketsMs());

  std::vector<MetricSnapshot> Snapshot() const;

  /// Drops every registered metric (tests and bench isolation).
  void Clear();

  /// 0.001ms .. ~16s in powers of 4 — wide enough for both operator probes
  /// and whole-query latencies.
  static std::vector<double> DefaultLatencyBucketsMs();

  /// 1 KiB .. 1 GiB in powers of 4 — byte-sized quantities (result-set
  /// footprints, snapshot files) share one layout so their histograms are
  /// comparable across subsystems.
  static std::vector<double> DefaultSizeBytesBuckets();

 private:
  struct Entry {
    MetricSnapshot::Kind kind;
    std::string name;
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* FindOrCreate(MetricSnapshot::Kind kind, const std::string& name,
                      const Labels& labels);

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;  // Keyed by name + encoded labels.
};

}  // namespace obs
}  // namespace regal

#endif  // REGAL_OBS_METRICS_H_
