#ifndef REGAL_OBS_METRICS_H_
#define REGAL_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace regal {
namespace obs {

/// Label set attached to a metric instance, e.g. {{"op", "including"}}.
/// Ordered so that equal label sets compare equal regardless of insertion
/// order.
using Labels = std::map<std::string, std::string>;

/// Monotone counter. Increment is lock-free; reading is a relaxed load.
class Counter {
 public:
  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-written-wins gauge.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

/// Fixed-bucket histogram: `buckets` are inclusive upper bounds in ascending
/// order, with an implicit +inf bucket at the end. Observe() is guarded by a
/// per-histogram mutex — histograms sit on per-query paths, not per-region
/// ones, so contention is not a concern.
class Histogram {
 public:
  explicit Histogram(std::vector<double> buckets);

  void Observe(double value);

  int64_t count() const;
  double sum() const;
  const std::vector<double>& bucket_bounds() const { return bounds_; }
  /// Cumulative counts per bucket (last entry == count()).
  std::vector<int64_t> CumulativeBucketCounts() const;

 private:
  mutable std::mutex mu_;
  std::vector<double> bounds_;
  std::vector<int64_t> bucket_counts_;  // bounds_.size() + 1 entries.
  int64_t count_ = 0;
  double sum_ = 0;
};

/// Point-in-time view of one metric, produced by Registry::Snapshot() for
/// the exporters.
struct MetricSnapshot {
  enum class Kind { kCounter, kGauge, kHistogram };
  Kind kind;
  std::string name;
  Labels labels;
  // Counter / gauge value (counter cast to double for uniformity).
  double value = 0;
  // Histogram payload.
  int64_t count = 0;
  double sum = 0;
  std::vector<double> bucket_bounds;
  std::vector<int64_t> bucket_counts;  // Cumulative.
};

/// Thread-safe registry of labeled metric families. Get* registers on first
/// use and returns a stable pointer — callers cache it and update without
/// touching the registry lock again. A metric name must keep one kind; Get*
/// with a mismatched kind aborts (it is a programming error, like a type
/// confusion in a schema).
class Registry {
 public:
  /// The process-wide default registry (the query engine and the bench
  /// report path record here).
  static Registry& Default();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter* GetCounter(const std::string& name, const Labels& labels = {});
  Gauge* GetGauge(const std::string& name, const Labels& labels = {});
  /// The bucket layout is fixed by the first registration of `name`.
  Histogram* GetHistogram(const std::string& name, const Labels& labels = {},
                          std::vector<double> buckets = DefaultLatencyBucketsMs());

  std::vector<MetricSnapshot> Snapshot() const;

  /// Drops every registered metric (tests and bench isolation).
  void Clear();

  /// 0.001ms .. ~16s in powers of 4 — wide enough for both operator probes
  /// and whole-query latencies.
  static std::vector<double> DefaultLatencyBucketsMs();

  /// 1 KiB .. 1 GiB in powers of 4 — byte-sized quantities (result-set
  /// footprints, snapshot files) share one layout so their histograms are
  /// comparable across subsystems.
  static std::vector<double> DefaultSizeBytesBuckets();

 private:
  struct Entry {
    MetricSnapshot::Kind kind;
    std::string name;
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* FindOrCreate(MetricSnapshot::Kind kind, const std::string& name,
                      const Labels& labels);

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;  // Keyed by name + encoded labels.
};

}  // namespace obs
}  // namespace regal

#endif  // REGAL_OBS_METRICS_H_
