#ifndef REGAL_OBS_PROMETHEUS_H_
#define REGAL_OBS_PROMETHEUS_H_

#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace regal {
namespace obs {

/// Escapes a label *value* for the Prometheus text exposition format:
/// backslash, double quote and newline become \\ \" \n. All other bytes —
/// including non-ASCII UTF-8 sequences — pass through unchanged, as the
/// format requires.
std::string PrometheusEscapeLabel(std::string_view value);

/// Escapes `# HELP` text: backslash and newline only (quotes are legal
/// there).
std::string PrometheusEscapeHelp(std::string_view text);

/// A metric snapshot list in the Prometheus text exposition format
/// (version 0.0.4): one `# HELP` + `# TYPE` header per family, counters and
/// gauges as single samples, histograms expanded into cumulative
/// `_bucket{le="..."}` samples plus `_sum` and `_count`. Families arrive
/// grouped because Registry::Snapshot() is sorted by name; samples of one
/// family stay consecutive as the format demands.
///
/// Serve with content type `text/plain; version=0.0.4; charset=utf-8`
/// (admin/admin_server.cc does).
std::string MetricsToPrometheus(const std::vector<MetricSnapshot>& snapshot);

/// Registers the help string emitted on the family's `# HELP` line; the
/// built-in regal_* families come pre-registered. Unknown families fall back
/// to a generic line. Thread-safe; last write wins.
void SetMetricHelp(const std::string& name, const std::string& help);

}  // namespace obs
}  // namespace regal

#endif  // REGAL_OBS_PROMETHEUS_H_
