#include "obs/prometheus.h"

#include <cmath>
#include <cstdio>
#include <map>
#include <mutex>

namespace regal {
namespace obs {

namespace {

// Help lines for the always-on families, so a scrape is self-describing
// without every registration site carrying prose. SetMetricHelp extends or
// overrides this at runtime.
const std::map<std::string, std::string>& BuiltinHelp() {
  static const auto* help = new std::map<std::string, std::string>{
      {"regal_queries_total", "Queries executed, by statement verb."},
      {"regal_query_latency_ms", "End-to-end query latency in milliseconds."},
      {"regal_query_peak_memory_bytes",
       "Peak bytes of materialized results per governed query."},
      {"regal_engine_inflight_queries",
       "Queries currently inside the engine's evaluation section."},
      {"regal_recorder_kept_total",
       "Flight-recorder records kept, by reason (slow/error/sampled)."},
      {"regal_recorder_skipped_total",
       "Completed queries the flight recorder chose not to keep."},
      {"regal_recorder_entries",
       "Records currently resident in the flight-recorder ring."},
      {"regal_log_records_total", "Structured log records emitted, by severity."},
      {"regal_log_dropped_total",
       "Structured log records dropped by the rate limiter."},
      {"regal_exec_threads", "Lanes (workers + caller) of the default pool."},
      {"regal_exec_queue_depth", "Thread-pool queue length sampled at submit."},
      {"regal_exec_active_lanes",
       "Pool lanes currently executing work (utilization numerator)."},
      {"regal_exec_tasks_total", "Thread-pool chunk/task executions."},
      {"regal_exec_steals_total", "Task executions claimed by a worker."},
      {"regal_exec_parallel_ops_total", "Operator kernels run partitioned."},
      {"regal_cache_hits_total", "Result-cache lookups that short-circuited."},
      {"regal_cache_misses_total", "Result-cache lookups that found nothing."},
      {"regal_cache_inserts_total", "Results published to the result cache."},
      {"regal_cache_evictions_total", "Result-cache entries evicted under pressure."},
      {"regal_cache_insert_failures_total",
       "Result-cache inserts abandoned (pressure/failpoint)."},
      {"regal_cache_bytes", "Accounted bytes resident in the result cache."},
      {"regal_cache_hit_ratio",
       "Lifetime hits / (hits + misses) of the result cache."},
      {"regal_safety_queries_admitted_total",
       "Governed queries passing admission control."},
      {"regal_safety_queries_rejected_total",
       "Queries refused up front, by reason."},
      {"regal_safety_queries_degraded_total",
       "Queries that fell back to sequential paths, by reason."},
      {"regal_safety_queries_stopped_total",
       "Queries stopped mid-flight, by governance reason."},
      {"regal_safety_kernel_fallbacks_total",
       "Parallel kernels that fell back to sequential execution."},
      {"regal_safety_index_build_fallbacks_total",
       "Index builds that fell back to sequential execution."},
      {"regal_storage_loads_total", "Snapshot loads, by format and outcome."},
      {"regal_storage_save_latency_ms",
       "Durable snapshot save latency in milliseconds."},
      {"regal_storage_load_latency_ms",
       "Snapshot load latency in milliseconds."},
      {"regal_storage_checksum_failures_total",
       "Snapshot reads rejected as kDataLoss, by kind."},
      {"regal_storage_bytes_written_total", "Bytes handed to storage writes."},
      {"regal_storage_fsyncs_total", "fsync/fdatasync calls issued."},
      {"regal_storage_commits_total", "Atomic snapshot commits (renames)."},
      {"regal_storage_write_failures_total", "Failed storage write protocols."},
      {"regal_storage_snapshot_bytes", "Size of the last committed snapshot."},
      {"regal_storage_orphan_tmp_recovered_total",
       "Orphaned temp files removed by Recover()."},
  };
  return *help;
}

std::mutex& HelpMutex() {
  static auto* mu = new std::mutex();
  return *mu;
}

std::map<std::string, std::string>& RuntimeHelp() {
  static auto* help = new std::map<std::string, std::string>();
  return *help;
}

std::string HelpFor(const std::string& name) {
  {
    std::lock_guard<std::mutex> lock(HelpMutex());
    auto it = RuntimeHelp().find(name);
    if (it != RuntimeHelp().end()) return it->second;
  }
  auto it = BuiltinHelp().find(name);
  if (it != BuiltinHelp().end()) return it->second;
  return "regal metric (no help registered)";
}

void AppendDouble(double value, std::string* out) {
  if (std::isnan(value)) {
    *out += "NaN";
  } else if (std::isinf(value)) {
    *out += value > 0 ? "+Inf" : "-Inf";
  } else {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    *out += buf;
  }
}

// {k1="v1",k2="v2"} with escaped values; empty string for no labels. `extra`
// appends one more pair (the histogram `le` label) without copying the map.
void AppendLabels(const Labels& labels, const std::string* extra_key,
                  const std::string* extra_value, std::string* out) {
  if (labels.empty() && extra_key == nullptr) return;
  *out += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) *out += ',';
    first = false;
    *out += k;
    *out += "=\"";
    *out += PrometheusEscapeLabel(v);
    *out += '"';
  }
  if (extra_key != nullptr) {
    if (!first) *out += ',';
    *out += *extra_key;
    *out += "=\"";
    *out += PrometheusEscapeLabel(*extra_value);
    *out += '"';
  }
  *out += '}';
}

void AppendSample(const std::string& name, const Labels& labels, double value,
                  std::string* out) {
  *out += name;
  AppendLabels(labels, nullptr, nullptr, out);
  *out += ' ';
  AppendDouble(value, out);
  *out += '\n';
}

const char* KindName(MetricSnapshot::Kind kind) {
  switch (kind) {
    case MetricSnapshot::Kind::kCounter:
      return "counter";
    case MetricSnapshot::Kind::kGauge:
      return "gauge";
    case MetricSnapshot::Kind::kHistogram:
      return "histogram";
  }
  return "untyped";
}

}  // namespace

std::string PrometheusEscapeLabel(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string PrometheusEscapeHelp(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

void SetMetricHelp(const std::string& name, const std::string& help) {
  std::lock_guard<std::mutex> lock(HelpMutex());
  RuntimeHelp()[name] = help;
}

std::string MetricsToPrometheus(const std::vector<MetricSnapshot>& snapshot) {
  std::string out;
  const std::string* previous_family = nullptr;
  static const std::string kLe = "le";
  for (const MetricSnapshot& m : snapshot) {
    if (previous_family == nullptr || *previous_family != m.name) {
      out += "# HELP " + m.name + ' ' + PrometheusEscapeHelp(HelpFor(m.name)) +
             '\n';
      out += "# TYPE " + m.name + ' ' + KindName(m.kind) + '\n';
      previous_family = &m.name;
    }
    switch (m.kind) {
      case MetricSnapshot::Kind::kCounter:
      case MetricSnapshot::Kind::kGauge:
        AppendSample(m.name, m.labels, m.value, &out);
        break;
      case MetricSnapshot::Kind::kHistogram: {
        for (size_t i = 0; i < m.bucket_counts.size(); ++i) {
          std::string le;
          if (i < m.bucket_bounds.size()) {
            char buf[64];
            std::snprintf(buf, sizeof(buf), "%.17g", m.bucket_bounds[i]);
            le = buf;
          } else {
            le = "+Inf";
          }
          out += m.name;
          out += "_bucket";
          AppendLabels(m.labels, &kLe, &le, &out);
          out += ' ';
          out += std::to_string(m.bucket_counts[i]);
          out += '\n';
        }
        AppendSample(m.name + "_sum", m.labels, m.sum, &out);
        out += m.name;
        out += "_count";
        AppendLabels(m.labels, nullptr, nullptr, &out);
        out += ' ';
        out += std::to_string(m.count);
        out += '\n';
        break;
      }
    }
  }
  return out;
}

}  // namespace obs
}  // namespace regal
