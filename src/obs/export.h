#ifndef REGAL_OBS_EXPORT_H_
#define REGAL_OBS_EXPORT_H_

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace regal {
namespace obs {

/// Human-readable rendering of a span tree, one node per line:
///
///   within  rows=120  cmp=1520  merge=0  probes=240  est=96  0.214 ms
///   ├─ scan sense  rows=4096
///   └─ scan entry  rows=1024
///
/// Zero-valued counters and unset estimates are omitted; cached nodes print
/// `(memo)`. Timing lines are omitted for un-executed (EXPLAIN-only) plans,
/// where dur_us is exactly 0.
std::string FormatSpanTree(const Span& span);

/// The span tree as a JSON document (nested objects mirroring the tree).
std::string SpanToJson(const Span& span);

class JsonWriter;

/// Streams one span subtree into an already-open JsonWriter, for callers
/// embedding the plan inside a larger document (the query-profile envelope).
void WriteSpanJson(const Span& span, JsonWriter* w);

/// The span tree in chrome://tracing "traceEvents" format (complete events,
/// microsecond timestamps) — load in chrome://tracing or Perfetto.
std::string SpanToChromeTrace(const Span& span);

/// A metric snapshot list as a JSON document: {"metrics": [...]} with one
/// object per metric carrying name, labels and the kind-specific payload.
std::string MetricsToJson(const std::vector<MetricSnapshot>& snapshot);

}  // namespace obs
}  // namespace regal

#endif  // REGAL_OBS_EXPORT_H_
