#ifndef REGAL_OBS_JSON_H_
#define REGAL_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace regal {
namespace obs {

/// Minimal streaming JSON writer used by the exporters (span trees, metric
/// snapshots, bench reports, chrome://tracing files). Emits compact,
/// syntactically valid JSON; commas and nesting are managed by the writer so
/// callers only state structure. Not a general-purpose serializer — just
/// enough for the observability output formats, with no dependencies.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Object member key; must be followed by exactly one value (or
  /// Begin{Object,Array}).
  JsonWriter& Key(std::string_view key);

  JsonWriter& String(std::string_view value);
  JsonWriter& Int(int64_t value);
  JsonWriter& Bool(bool value);
  /// Non-finite doubles are emitted as null (JSON has no Inf/NaN).
  JsonWriter& Double(double value);

  /// The document built so far. Call once nesting is balanced.
  std::string Take() { return std::move(out_); }
  const std::string& str() const { return out_; }

 private:
  void Separate();

  std::string out_;
  // One char of state per open container: '[' / '{' fresh, ',' after the
  // first element, ':' right after a Key.
  std::string stack_;
};

/// JSON string escaping (quotes not included).
std::string JsonEscape(std::string_view s);

}  // namespace obs
}  // namespace regal

#endif  // REGAL_OBS_JSON_H_
