#ifndef REGAL_OBS_COUNTERS_H_
#define REGAL_OBS_COUNTERS_H_

#include <cstdint>

namespace regal {
namespace obs {

/// Low-level work counters reported by the hot operator implementations
/// (core/algebra, core/extended, index/word_index). Semantics per field:
///
///  * `comparisons`  — region/region or token/pattern comparisons. Linear
///    merges count one per consumed element (a bulk-appended run of c
///    elements charges c, so the SIMD and scalar kernel tiers agree
///    exactly); gallop/binary-search phases charge the deterministic
///    worst-case depth of the probed range (⌈log2⌉-style, not the
///    data-dependent early-exit count), so the counter stays exact-shape
///    without instrumenting std::lower_bound and is identical across ISA
///    tiers; naive oracles count their inner-loop iterations, so the
///    quadratic/linear gap of E8 is directly visible in this counter.
///  * `merge_steps`  — input elements consumed by linear sweeps (set
///    operations, order semi-joins, token merges).
///  * `index_probes` — point lookups against an index structure: one per
///    ContainmentIndex existence test and one per suffix-array/vocabulary
///    probe in the word indexes.
///
/// Collection is opt-in via a thread-local sink: operators tally into stack
/// locals (free — they live in registers) and flush once per call *only*
/// when a sink is installed. With no sink (the default) the cost is a single
/// thread-local load + branch per operator call, which is what keeps tracing
/// zero-cost when disabled (verified by bench_operators).
struct OpCounters {
  int64_t comparisons = 0;
  int64_t merge_steps = 0;
  int64_t index_probes = 0;

  void Add(const OpCounters& other) {
    comparisons += other.comparisons;
    merge_steps += other.merge_steps;
    index_probes += other.index_probes;
  }

  OpCounters Since(const OpCounters& earlier) const {
    return OpCounters{comparisons - earlier.comparisons,
                      merge_steps - earlier.merge_steps,
                      index_probes - earlier.index_probes};
  }

  int64_t Total() const { return comparisons + merge_steps + index_probes; }
};

/// The calling thread's counter sink, or nullptr when collection is off.
OpCounters* CountersSink();

/// Installs `sink` for the calling thread and returns the previous sink so
/// scopes can nest (the span Tracer installs itself this way).
OpCounters* SwapCountersSink(OpCounters* sink);

}  // namespace obs
}  // namespace regal

#endif  // REGAL_OBS_COUNTERS_H_
