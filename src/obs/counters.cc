#include "obs/counters.h"

namespace regal {
namespace obs {

namespace {
thread_local OpCounters* g_sink = nullptr;
}  // namespace

OpCounters* CountersSink() { return g_sink; }

OpCounters* SwapCountersSink(OpCounters* sink) {
  OpCounters* previous = g_sink;
  g_sink = sink;
  return previous;
}

}  // namespace obs
}  // namespace regal
