#ifndef REGAL_OBS_TRACE_H_
#define REGAL_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/counters.h"
#include "util/timer.h"

namespace regal {
namespace obs {

/// One node of a per-query execution trace: an operator (or engine stage)
/// with timing, cardinalities and the work counters accumulated over its
/// subtree. The tree mirrors the executed expression: shared (memoized)
/// subtrees appear once per mention, with repeat mentions marked
/// `from_cache` and carrying no children.
struct Span {
  std::string name;    // Operator / stage, e.g. "within", "scan", "word".
  std::string detail;  // Operand: region name, pattern text, ...
  int64_t rows_in = 0;   // Sum of input cardinalities.
  int64_t rows_out = 0;  // Output cardinality.
  OpCounters counters;   // Cumulative over this subtree.
  double est_rows = -1;  // Optimizer cardinality estimate; < 0 = none.
  bool from_cache = false;
  double start_us = 0;  // Relative to the start of the trace.
  double dur_us = 0;
  std::vector<Span> children;

  /// Nodes in this subtree (including this one).
  int64_t TotalSpans() const;
  /// Maximum nesting depth (a leaf counts 1).
  int Depth() const;
};

/// Collects a span tree for one query execution. Construction installs the
/// tracer's counter sink on the calling thread (restored on destruction), so
/// every operator that reports OpCounters lands in the enclosing span.
///
/// Spans are recorded into a flat arena and assembled into a nested Span
/// tree by Build(); opening a span is one vector emplace + clock read.
/// Instrumented code paths take a `Tracer*` that may be null — the RAII
/// SpanScope below is a no-op then, which is the disabled fast path.
class Tracer {
 public:
  Tracer();
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Opens a span nested under the innermost open span. Returns its id.
  int Open(std::string name, std::string detail);

  /// Seals the innermost open span; `id` must match (enforces LIFO use).
  void Close(int id);

  void SetRows(int id, int64_t rows_in, int64_t rows_out);
  void MarkCached(int id);

  /// Assembles the recorded spans into a tree. A single top-level span is
  /// returned as the root; multiple top-level spans (or none) get a
  /// synthetic "trace" root. Requires every span to be closed.
  Span Build() const;

  /// Counters accumulated across the whole trace so far.
  const OpCounters& counters() const { return counters_; }

  int64_t num_spans() const { return static_cast<int64_t>(nodes_.size()); }

 private:
  struct Node {
    std::string name;
    std::string detail;
    int parent;
    double start_us;
    double dur_us = 0;
    int64_t rows_in = 0;
    int64_t rows_out = 0;
    bool from_cache = false;
    bool open = true;
    OpCounters at_open;   // Snapshot of counters_ when opened.
    OpCounters counters;  // Delta over the span's lifetime (cumulative).
  };

  std::vector<Node> nodes_;
  std::vector<int> stack_;
  OpCounters counters_;
  OpCounters* previous_sink_;
  Timer timer_;
};

/// RAII span handle. With a null tracer every member is a no-op, so
/// instrumented code can create one unconditionally. Closing happens in the
/// destructor, which keeps spans balanced across early error returns.
class SpanScope {
 public:
  SpanScope(Tracer* tracer, const char* name, std::string detail = "")
      : tracer_(tracer) {
    if (tracer_ != nullptr) id_ = tracer_->Open(name, std::move(detail));
  }
  ~SpanScope() {
    if (tracer_ != nullptr) tracer_->Close(id_);
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  void SetRows(int64_t rows_in, int64_t rows_out) {
    if (tracer_ != nullptr) tracer_->SetRows(id_, rows_in, rows_out);
  }
  void MarkCached() {
    if (tracer_ != nullptr) tracer_->MarkCached(id_);
  }
  bool enabled() const { return tracer_ != nullptr; }

 private:
  Tracer* tracer_;
  int id_ = -1;
};

}  // namespace obs
}  // namespace regal

#endif  // REGAL_OBS_TRACE_H_
