#include "obs/trace.h"

#include <algorithm>
#include <cstdlib>

namespace regal {
namespace obs {

int64_t Span::TotalSpans() const {
  int64_t total = 1;
  for (const Span& child : children) total += child.TotalSpans();
  return total;
}

int Span::Depth() const {
  int deepest = 0;
  for (const Span& child : children) deepest = std::max(deepest, child.Depth());
  return deepest + 1;
}

Tracer::Tracer() { previous_sink_ = SwapCountersSink(&counters_); }

Tracer::~Tracer() { SwapCountersSink(previous_sink_); }

int Tracer::Open(std::string name, std::string detail) {
  int id = static_cast<int>(nodes_.size());
  Node node;
  node.name = std::move(name);
  node.detail = std::move(detail);
  node.parent = stack_.empty() ? -1 : stack_.back();
  node.start_us = timer_.Seconds() * 1e6;
  node.at_open = counters_;
  nodes_.push_back(std::move(node));
  stack_.push_back(id);
  return id;
}

void Tracer::Close(int id) {
  if (stack_.empty() || stack_.back() != id) std::abort();  // Unbalanced.
  Node& node = nodes_[static_cast<size_t>(id)];
  node.dur_us = timer_.Seconds() * 1e6 - node.start_us;
  node.counters = counters_.Since(node.at_open);
  node.open = false;
  stack_.pop_back();
}

void Tracer::SetRows(int id, int64_t rows_in, int64_t rows_out) {
  nodes_[static_cast<size_t>(id)].rows_in = rows_in;
  nodes_[static_cast<size_t>(id)].rows_out = rows_out;
}

void Tracer::MarkCached(int id) {
  nodes_[static_cast<size_t>(id)].from_cache = true;
}

Span Tracer::Build() const {
  // Children in recording order: one pass to bucket child ids per parent.
  std::vector<std::vector<int>> children(nodes_.size());
  std::vector<int> roots;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].open) std::abort();  // Build() before all spans closed.
    if (nodes_[i].parent < 0) {
      roots.push_back(static_cast<int>(i));
    } else {
      children[static_cast<size_t>(nodes_[i].parent)].push_back(
          static_cast<int>(i));
    }
  }

  // Nodes are appended parent-before-child, so building in reverse index
  // order has every child tree finished before its parent needs it.
  std::vector<Span> built(nodes_.size());
  for (size_t i = nodes_.size(); i-- > 0;) {
    const Node& node = nodes_[i];
    Span& span = built[i];
    span.name = node.name;
    span.detail = node.detail;
    span.rows_in = node.rows_in;
    span.rows_out = node.rows_out;
    span.counters = node.counters;
    span.from_cache = node.from_cache;
    span.start_us = node.start_us;
    span.dur_us = node.dur_us;
    span.children.reserve(children[i].size());
    for (int child : children[i]) {
      span.children.push_back(std::move(built[static_cast<size_t>(child)]));
    }
  }

  if (roots.size() == 1) return std::move(built[static_cast<size_t>(roots[0])]);
  Span root;
  root.name = "trace";
  root.counters = counters_;
  for (int r : roots) {
    root.children.push_back(std::move(built[static_cast<size_t>(r)]));
    root.dur_us = std::max(root.dur_us, root.children.back().start_us +
                                            root.children.back().dur_us);
  }
  return root;
}

}  // namespace obs
}  // namespace regal
