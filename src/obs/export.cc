#include "obs/export.h"

#include <cstdio>

#include "obs/json.h"

namespace regal {
namespace obs {

namespace {

void AppendLabel(const Span& span, std::string* out) {
  *out += span.name;
  if (!span.detail.empty()) {
    *out += ' ';
    *out += span.detail;
  }
  if (span.from_cache) {
    *out += "  (memo)";
  }
  *out += "  rows=" + std::to_string(span.rows_out);
  if (span.counters.comparisons > 0) {
    *out += "  cmp=" + std::to_string(span.counters.comparisons);
  }
  if (span.counters.merge_steps > 0) {
    *out += "  merge=" + std::to_string(span.counters.merge_steps);
  }
  if (span.counters.index_probes > 0) {
    *out += "  probes=" + std::to_string(span.counters.index_probes);
  }
  if (span.est_rows >= 0) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", span.est_rows);
    *out += "  est=";
    *out += buf;
  }
  if (span.dur_us > 0) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", span.dur_us / 1e3);
    *out += "  ";
    *out += buf;
    *out += " ms";
  }
  *out += '\n';
}

void FormatSubtree(const Span& span, const std::string& prefix,
                   std::string* out) {
  for (size_t i = 0; i < span.children.size(); ++i) {
    const bool last = (i + 1 == span.children.size());
    *out += prefix;
    *out += last ? "└─ " : "├─ ";
    AppendLabel(span.children[i], out);
    FormatSubtree(span.children[i], prefix + (last ? "   " : "│  "), out);
  }
}

void WriteChromeEvents(const Span& span, JsonWriter* w) {
  w->BeginObject();
  std::string name = span.name;
  if (!span.detail.empty()) name += " " + span.detail;
  w->Key("name").String(name);
  w->Key("cat").String("eval");
  w->Key("ph").String("X");
  w->Key("ts").Double(span.start_us);
  w->Key("dur").Double(span.dur_us);
  w->Key("pid").Int(1);
  w->Key("tid").Int(1);
  w->Key("args").BeginObject();
  w->Key("rows_out").Int(span.rows_out);
  w->Key("comparisons").Int(span.counters.comparisons);
  w->Key("index_probes").Int(span.counters.index_probes);
  w->EndObject();
  w->EndObject();
  for (const Span& child : span.children) WriteChromeEvents(child, w);
}

}  // namespace

void WriteSpanJson(const Span& span, JsonWriter* w) {
  w->BeginObject();
  w->Key("name").String(span.name);
  if (!span.detail.empty()) w->Key("detail").String(span.detail);
  w->Key("rows_in").Int(span.rows_in);
  w->Key("rows_out").Int(span.rows_out);
  w->Key("comparisons").Int(span.counters.comparisons);
  w->Key("merge_steps").Int(span.counters.merge_steps);
  w->Key("index_probes").Int(span.counters.index_probes);
  if (span.est_rows >= 0) w->Key("est_rows").Double(span.est_rows);
  if (span.from_cache) w->Key("from_cache").Bool(true);
  w->Key("start_us").Double(span.start_us);
  w->Key("dur_us").Double(span.dur_us);
  if (!span.children.empty()) {
    w->Key("children").BeginArray();
    for (const Span& child : span.children) WriteSpanJson(child, w);
    w->EndArray();
  }
  w->EndObject();
}

std::string FormatSpanTree(const Span& span) {
  std::string out;
  AppendLabel(span, &out);
  FormatSubtree(span, "", &out);
  return out;
}

std::string SpanToJson(const Span& span) {
  JsonWriter w;
  WriteSpanJson(span, &w);
  return w.Take();
}

std::string SpanToChromeTrace(const Span& span) {
  JsonWriter w;
  w.BeginObject();
  w.Key("displayTimeUnit").String("ms");
  w.Key("traceEvents").BeginArray();
  WriteChromeEvents(span, &w);
  w.EndArray();
  w.EndObject();
  return w.Take();
}

std::string MetricsToJson(const std::vector<MetricSnapshot>& snapshot) {
  JsonWriter w;
  w.BeginObject();
  w.Key("metrics").BeginArray();
  for (const MetricSnapshot& m : snapshot) {
    w.BeginObject();
    w.Key("name").String(m.name);
    switch (m.kind) {
      case MetricSnapshot::Kind::kCounter:
        w.Key("type").String("counter");
        break;
      case MetricSnapshot::Kind::kGauge:
        w.Key("type").String("gauge");
        break;
      case MetricSnapshot::Kind::kHistogram:
        w.Key("type").String("histogram");
        break;
    }
    if (!m.labels.empty()) {
      w.Key("labels").BeginObject();
      for (const auto& [k, v] : m.labels) w.Key(k).String(v);
      w.EndObject();
    }
    if (m.kind == MetricSnapshot::Kind::kHistogram) {
      w.Key("count").Int(m.count);
      w.Key("sum").Double(m.sum);
      w.Key("buckets").BeginArray();
      for (size_t i = 0; i < m.bucket_counts.size(); ++i) {
        w.BeginObject();
        if (i < m.bucket_bounds.size()) {
          w.Key("le").Double(m.bucket_bounds[i]);
        } else {
          w.Key("le").String("+inf");
        }
        w.Key("count").Int(m.bucket_counts[i]);
        w.EndObject();
      }
      w.EndArray();
    } else {
      w.Key("value").Double(m.value);
    }
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.Take();
}

}  // namespace obs
}  // namespace regal
