#include "recovery/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "obs/metrics.h"
#include "util/random.h"

namespace regal {
namespace recovery {

double BackoffPolicy::CapMs(int attempt) const {
  double cap = initial_backoff_ms;
  for (int i = 1; i < attempt; ++i) {
    cap *= multiplier;
    if (cap >= max_backoff_ms) return max_backoff_ms;
  }
  return std::min(cap, max_backoff_ms);
}

double BackoffPolicy::DelayMs(int attempt, Rng* jitter) const {
  // Uniform in [0, cap): Next() >> 11 leaves 53 random bits, the exact
  // mantissa width of a double, so the quotient is uniform on [0, 1).
  const double unit =
      static_cast<double>(jitter->Next() >> 11) * (1.0 / 9007199254740992.0);
  return CapMs(attempt) * unit;
}

bool IsTransientIo(const Status& status) {
  switch (status.code()) {
    case StatusCode::kResourceExhausted:  // ENOSPC / EDQUOT.
    case StatusCode::kInternal:           // EIO and other device hiccups.
      return true;
    default:
      return false;
  }
}

Status RetryWithBackoff(const RetryPolicy& policy,
                        const safety::QueryContext* context, const char* what,
                        const std::function<Status()>& op) {
  obs::Registry& registry = obs::Registry::Default();
  Rng jitter(policy.jitter_seed);
  double backoff_ms = policy.initial_backoff_ms;
  const int attempts = std::max(1, policy.max_attempts);
  Status last;
  for (int attempt = 1;; ++attempt) {
    if (context != nullptr) {
      // An expired deadline or a cancelled query must not keep hammering
      // the device; the governance status wins over the I/O one.
      REGAL_RETURN_NOT_OK(context->Check());
    }
    last = op();
    if (last.ok()) {
      if (attempt > 1) {
        registry
            .GetCounter("regal_recovery_retries_total",
                        {{"outcome", "recovered"}})
            ->Increment();
      }
      return last;
    }
    if (!IsTransientIo(last) || attempt >= attempts) {
      registry
          .GetCounter("regal_recovery_retries_total",
                      {{"outcome",
                        IsTransientIo(last) ? "exhausted" : "permanent"}})
          ->Increment();
      return last;
    }
    registry
        .GetCounter("regal_recovery_retries_total", {{"outcome", "retry"}})
        ->Increment();
    // Full jitter over (backoff/2, backoff]: deterministic from the seed,
    // yet two writers with different seeds never thunder in lockstep.
    double sleep_ms =
        backoff_ms * (0.5 + 0.5 * (static_cast<double>(jitter.Next() >> 11) *
                                   (1.0 / 9007199254740992.0)));
    sleep_ms = std::min(sleep_ms, policy.max_backoff_ms);
    if (policy.sleeper) {
      policy.sleeper(sleep_ms);
    } else {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          std::min(sleep_ms, 1000.0)));
    }
    backoff_ms = std::min(backoff_ms * policy.multiplier,
                          policy.max_backoff_ms);
    (void)what;
  }
}

}  // namespace recovery
}  // namespace regal
