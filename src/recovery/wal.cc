#include "recovery/wal.h"

#include <chrono>
#include <utility>

#include "index/word_index.h"
#include "obs/metrics.h"
#include "safety/failpoint.h"
#include "storage/checksum.h"
#include "storage/compress.h"
#include "storage/wire.h"
#include "text/text.h"

namespace regal {
namespace recovery {

namespace {

using storage::Crc32c;
using storage::GetU32;
using storage::GetU64;
using storage::PutU32;
using storage::PutU64;

// "REGALW\0" + format version 1 (parallel to the snapshot's "REGAL2\0").
constexpr char kWalMagic[kWalHeaderSize] = {'R', 'E', 'G', 'A',
                                            'L', 'W', '\0', '\x01'};

// crc (4) + len (4) + lsn (8) + kind (1).
constexpr size_t kFrameHeader = 17;
// crc excluded: what the crc covers.
constexpr size_t kCrcCovered = kFrameHeader - 4;

// Text payloads above this raw size are refused on decode — the same
// "don't let a corrupt length field allocate the machine" guard the
// snapshot reader applies, relevant here because a CRC collision under the
// bit-flip fuzz must not take the process down.
constexpr uint64_t kMaxTextSize = static_cast<uint64_t>(1) << 31;

bool ValidKind(uint8_t kind) {
  return kind >= static_cast<uint8_t>(MutationKind::kDefineRegions) &&
         kind <= static_cast<uint8_t>(MutationKind::kSetPattern);
}

// PutU32's little-endian byte order, written in place instead of appended —
// for bulk region stores and for patching the crc and length slots once the
// payload size is known.
void PatchU32(char* p, uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<char>(v >> (8 * i));
}

// u32 name_len, name, then the snapshot's region-list encoding (u64 count,
// count x zigzag-varint left-delta + width), reused verbatim so the two
// formats cannot drift. Compactness is load-bearing here, not a nicety:
// under SyncPolicy::kInterval every journaled byte is pushed through fsync
// on the flusher's cadence, so the WAL's byte rate — ~2-3 bytes per region
// delta-encoded versus 8 fixed-width — is what decides whether a busy
// mutator saturates the device and backpressures.
// Writes `v` as a varint at `p`, returning one past the last byte — the
// pointer-bumping twin of storage::PutVarint for pre-sized buffers, where
// per-byte push_back capacity checks were a measured share of encode cost.
char* EmitVarint(char* p, uint64_t v) {
  while (v >= 0x80) {
    *p++ = static_cast<char>(v | 0x80);
    v >>= 7;
  }
  *p++ = static_cast<char>(v);
  return p;
}

void AppendNamedRegions(std::string* out, const std::string& name,
                        const RegionSet& regions) {
  PutU32(out, static_cast<uint32_t>(name.size()));
  out->append(name);
  PutU64(out, regions.size());
  // Resize to the worst case (two 5-byte varints per 32-bit region), emit
  // with a bumped pointer, then trim — byte-identical to the snapshot's
  // storage::AppendRegionList, minus the per-byte capacity checks.
  const size_t base = out->size();
  out->resize(base + 10 * regions.size());
  char* p = &(*out)[base];
  int64_t prev_left = 0;
  for (const Region& r : regions.regions()) {
    p = EmitVarint(p, storage::ZigZag(r.left - prev_left));
    p = EmitVarint(p, storage::ZigZag(r.right - static_cast<int64_t>(r.left)));
    prev_left = r.left;
  }
  out->resize(static_cast<size_t>(p - out->data()));
}

Status ParseNamedRegions(std::string_view payload, std::string* name,
                         RegionSet* regions) {
  if (payload.size() < 4) {
    return Status::DataLoss("wal: region payload shorter than its name length");
  }
  const uint32_t name_len = GetU32(payload.data());
  if (payload.size() < 4 + static_cast<size_t>(name_len) + 8) {
    return Status::DataLoss("wal: region payload shorter than declared");
  }
  name->assign(payload.data() + 4, name_len);
  const char* p = payload.data() + 4 + name_len;
  const char* end = payload.data() + payload.size();
  const uint64_t count = GetU64(p);
  p += 8;
  if (count > (static_cast<size_t>(end - p))) {
    // Each region costs at least two varint bytes; a count larger than the
    // remaining payload is corrupt before any varint is read. (Guards the
    // reserve below against a CRC-colliding length bomb.)
    return Status::DataLoss("wal: region count disagrees with payload");
  }
  std::vector<Region> out;
  out.reserve(count);
  int64_t prev_left = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t left_delta = 0;
    uint64_t width = 0;
    if (!storage::GetVarint(&p, end, &left_delta) ||
        !storage::GetVarint(&p, end, &width)) {
      return Status::DataLoss("wal: truncated region varints");
    }
    const int64_t left = prev_left + storage::UnZigZag(left_delta);
    const int64_t right = left + storage::UnZigZag(width);
    if (left < INT32_MIN || left > INT32_MAX || right < INT32_MIN ||
        right > INT32_MAX || left > right) {
      return Status::DataLoss("wal: region offset out of range");
    }
    out.push_back(Region{static_cast<Offset>(left),
                         static_cast<Offset>(right)});
    prev_left = left;
  }
  if (p != end) {
    return Status::DataLoss("wal: trailing bytes after region list");
  }
  *regions = RegionSet::FromUnsorted(std::move(out));
  return Status::OK();
}

// u8 codec (0 stored / 1 LZ), u64 raw_size, bytes — the snapshot's text
// section encoding, reused verbatim so the formats cannot drift.
void AppendText(std::string* out, const std::string& text) {
  const std::string compressed = storage::LzCompress(text);
  if (compressed.size() < text.size()) {
    out->push_back('\x01');
    PutU64(out, text.size());
    out->append(compressed);
  } else {
    out->push_back('\x00');
    PutU64(out, text.size());
    out->append(text);
  }
}

Status ParseText(std::string_view payload, std::string* text) {
  if (payload.size() < 9) {
    return Status::DataLoss("wal: text payload shorter than its header");
  }
  const uint8_t codec = static_cast<uint8_t>(payload[0]);
  const uint64_t raw_size = GetU64(payload.data() + 1);
  if (raw_size > kMaxTextSize) {
    return Status::DataLoss("wal: text size out of range");
  }
  const std::string_view body = payload.substr(9);
  if (codec == 0) {
    if (body.size() != raw_size) {
      return Status::DataLoss("wal: stored text size disagrees with payload");
    }
    text->assign(body);
    return Status::OK();
  }
  if (codec == 1) {
    REGAL_ASSIGN_OR_RETURN(*text, storage::LzDecompress(body, raw_size));
    return Status::OK();
  }
  return Status::DataLoss("wal: unknown text codec " + std::to_string(codec));
}

void EncodeMutationPayloadTo(std::string* out, const Mutation& m) {
  switch (m.kind) {
    case MutationKind::kDefineRegions:
    case MutationKind::kReplaceRegions:
    case MutationKind::kSetPattern:
      AppendNamedRegions(out, m.name, m.regions);
      break;
    case MutationKind::kBindText:
      AppendText(out, m.text);
      break;
  }
}

// Encodes one frame directly into `out` (no intermediate payload / body /
// frame strings — this sits on the per-mutation hot path, where three
// allocations per record were a measurable share of the WAL overhead).
Status AppendWalRecordTo(std::string* out, uint64_t lsn, const Mutation& m) {
  if (lsn == 0) {
    return Status::InvalidArgument("wal: lsn 0 is reserved for 'no records'");
  }
  const size_t frame_start = out->size();
  PutU32(out, 0);  // crc, patched below
  PutU32(out, 0);  // payload length, patched below
  PutU64(out, lsn);
  out->push_back(static_cast<char>(m.kind));
  const size_t payload_start = out->size();
  EncodeMutationPayloadTo(out, m);
  const uint32_t payload_len =
      static_cast<uint32_t>(out->size() - payload_start);
  char* frame = &(*out)[frame_start];
  PatchU32(frame + 4, payload_len);
  PatchU32(frame, Crc32c(std::string_view(frame + 4,
                                          kCrcCovered + payload_len)));
  return Status::OK();
}

Result<Mutation> DecodeMutationPayload(MutationKind kind,
                                       std::string_view payload) {
  Mutation m;
  m.kind = kind;
  switch (kind) {
    case MutationKind::kDefineRegions:
    case MutationKind::kReplaceRegions:
    case MutationKind::kSetPattern:
      REGAL_RETURN_NOT_OK(ParseNamedRegions(payload, &m.name, &m.regions));
      break;
    case MutationKind::kBindText:
      REGAL_RETURN_NOT_OK(ParseText(payload, &m.text));
      break;
  }
  return m;
}

}  // namespace

Mutation Mutation::DefineRegions(std::string name, RegionSet regions) {
  Mutation m;
  m.kind = MutationKind::kDefineRegions;
  m.name = std::move(name);
  m.regions = std::move(regions);
  return m;
}

Mutation Mutation::ReplaceRegions(std::string name, RegionSet regions) {
  Mutation m;
  m.kind = MutationKind::kReplaceRegions;
  m.name = std::move(name);
  m.regions = std::move(regions);
  return m;
}

Mutation Mutation::BindText(std::string text) {
  Mutation m;
  m.kind = MutationKind::kBindText;
  m.text = std::move(text);
  return m;
}

Mutation Mutation::SetPattern(const Pattern& pattern, RegionSet regions) {
  Mutation m;
  m.kind = MutationKind::kSetPattern;
  m.name = pattern.CacheKey();
  m.regions = std::move(regions);
  return m;
}

Status ApplyMutation(Instance* instance, const Mutation& m) {
  switch (m.kind) {
    // Both region kinds upsert here: the engine enforces the "already
    // defined" error for DefineRegions *before* journaling, so by the time
    // a record exists it is unconditionally applicable — which is what
    // makes replaying over a snapshot that already contains it a no-op.
    case MutationKind::kDefineRegions:
    case MutationKind::kReplaceRegions:
      instance->SetRegionSet(m.name, m.regions);
      return Status::OK();
    case MutationKind::kBindText: {
      auto text = std::make_shared<Text>(m.text);
      auto index = std::make_shared<SuffixArrayWordIndex>(text.get());
      instance->BindText(std::move(text), std::move(index));
      return Status::OK();
    }
    case MutationKind::kSetPattern: {
      REGAL_ASSIGN_OR_RETURN(Pattern p, Pattern::FromCacheKey(m.name));
      instance->SetSyntheticPattern(p, m.regions);
      return Status::OK();
    }
  }
  return Status::InvalidArgument("wal: unknown mutation kind");
}

std::string WalHeader() { return std::string(kWalMagic, kWalHeaderSize); }

Result<std::string> EncodeWalRecord(uint64_t lsn, const Mutation& m) {
  std::string frame;
  REGAL_RETURN_NOT_OK(AppendWalRecordTo(&frame, lsn, m));
  return frame;
}

Result<WalReadResult> ReadWalBytes(std::string_view bytes) {
  WalReadResult result;
  if (bytes.empty()) return result;
  if (bytes.size() < kWalHeaderSize ||
      std::string_view(kWalMagic, kWalHeaderSize) !=
          bytes.substr(0, kWalHeaderSize)) {
    // A header this writer wrote is either complete (created before any
    // record, via AtomicWriteFile or a synced append) or absent; damage
    // here means the file is not our WAL at all.
    return Status::DataLoss("wal: bad magic/version header");
  }
  size_t offset = kWalHeaderSize;
  auto stop = [&](std::string why) {
    result.valid_bytes = offset;
    result.dropped_tail_bytes = bytes.size() - offset;
    result.tail_error = std::move(why);
  };
  while (offset < bytes.size()) {
    if (bytes.size() - offset < kFrameHeader) {
      stop("frame header overruns file");
      break;
    }
    const char* frame = bytes.data() + offset;
    const uint32_t stored_crc = GetU32(frame);
    const uint32_t payload_len = GetU32(frame + 4);
    if (bytes.size() - offset - kFrameHeader < payload_len) {
      stop("payload overruns file");
      break;
    }
    const std::string_view covered(frame + 4, kCrcCovered + payload_len);
    if (Crc32c(covered) != stored_crc) {
      stop("record checksum mismatch");
      break;
    }
    const uint64_t lsn = GetU64(frame + 8);
    const uint8_t kind = static_cast<uint8_t>(frame[16]);
    if (!ValidKind(kind) || lsn <= result.last_lsn) {
      // CRC-valid but semantically impossible (this writer never emits
      // either) — treat as the start of an untrusted tail rather than
      // guessing what the bytes meant.
      stop(!ValidKind(kind) ? "unknown record kind"
                            : "lsn not strictly increasing");
      break;
    }
    Result<Mutation> m = DecodeMutationPayload(
        static_cast<MutationKind>(kind),
        std::string_view(frame + kFrameHeader, payload_len));
    if (!m.ok()) {
      stop("record payload undecodable: " + m.status().message());
      break;
    }
    result.records.emplace_back(lsn, std::move(m).value());
    result.last_lsn = lsn;
    offset += kFrameHeader + payload_len;
  }
  if (result.tail_error.empty()) result.valid_bytes = bytes.size();
  return result;
}

const char* SyncPolicyName(SyncPolicy policy) {
  switch (policy) {
    case SyncPolicy::kAlways:
      return "always";
    case SyncPolicy::kInterval:
      return "interval";
    case SyncPolicy::kNever:
      return "never";
  }
  return "unknown";
}

// Bound the append buffer even when no fsync is due: past this size the
// memory cost outweighs the saved write syscalls.
constexpr size_t kFlushBytes = 256 * 1024;

// Buffer size at which appends block until the background flusher drains —
// a memory bound, not a durability one. Generous on purpose: an fsync tail
// latency of a few milliseconds must not stall the mutator, and under
// kInterval the buffered records were never acknowledged as durable anyway.
constexpr size_t kBackpressureBytes = 16 * kFlushBytes;

WalWriter::WalWriter(storage::Env* env, std::string path, uint64_t next_lsn,
                     WalWriterOptions options)
    : env_(env),
      path_(std::move(path)),
      next_lsn_(next_lsn),
      options_(std::move(options)) {
  obs::Registry& registry = obs::Registry::Default();
  records_counter_ = registry.GetCounter("regal_wal_records_total");
  bytes_counter_ = registry.GetCounter("regal_wal_bytes_written_total");
  syncs_counter_ = registry.GetCounter("regal_wal_syncs_total");
  size_gauge_ = registry.GetGauge("regal_wal_size_bytes");
}

WalWriter::~WalWriter() { StopFlusher(); }

Result<std::unique_ptr<WalWriter>> WalWriter::Open(storage::Env* env,
                                                   std::string path,
                                                   uint64_t next_lsn,
                                                   WalWriterOptions options) {
  std::unique_ptr<WalWriter> writer(
      new WalWriter(env, std::move(path), next_lsn, std::move(options)));
  uint64_t size = 0;
  if (env->FileExists(writer->path_)) {
    REGAL_ASSIGN_OR_RETURN(size, env->FileSize(writer->path_));
  }
  const bool fresh = size < kWalHeaderSize;
  Status open = RetryWithBackoff(
      writer->options_.retry, /*context=*/nullptr, "wal-open", [&] {
        Result<std::unique_ptr<storage::WritableFile>> file =
            fresh ? env->NewWritableFile(writer->path_)
                  : env->NewAppendableFile(writer->path_);
        REGAL_RETURN_NOT_OK(file.status());
        writer->file_ = std::move(file).value();
        return Status::OK();
      });
  REGAL_RETURN_NOT_OK(open);
  if (fresh) {
    // A sub-header file can only be a torn creation: no record ever
    // followed, so rewriting the header loses nothing.
    writer->buffer_ = WalHeader();
    REGAL_RETURN_NOT_OK(writer->WriteOut(/*sync=*/true));
    // fsync the parent directory too: a synced file whose directory entry
    // was never persisted simply vanishes in a crash, records and all.
    REGAL_RETURN_NOT_OK(RetryWithBackoff(
        writer->options_.retry, /*context=*/nullptr, "wal-dirsync",
        [&] { return env->SyncDir(storage::ParentDir(writer->path_)); }));
    size = kWalHeaderSize;
  }
  writer->size_gauge_->Set(static_cast<double>(size));
  if (writer->options_.sync == SyncPolicy::kInterval &&
      writer->options_.background_sync) {
    writer->flusher_ = std::thread(&WalWriter::FlusherLoop, writer.get());
  }
  return writer;
}

Status WalWriter::Append(const Mutation& m, uint64_t* lsn) {
  uint64_t first = 0;
  REGAL_RETURN_NOT_OK(AppendCore(&m, 1, &first));
  if (lsn != nullptr) *lsn = first;
  return Status::OK();
}

Status WalWriter::AppendBatch(const std::vector<Mutation>& batch,
                              std::vector<uint64_t>* lsns) {
  uint64_t first = 0;
  REGAL_RETURN_NOT_OK(AppendCore(batch.data(), batch.size(), &first));
  if (lsns != nullptr) {
    lsns->resize(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      (*lsns)[i] = first + static_cast<uint64_t>(i);
    }
  }
  return Status::OK();
}

Status WalWriter::AppendCore(const Mutation* batch, size_t count,
                             uint64_t* first_lsn) {
  if (count == 0) return Status::OK();
  if (file_ == nullptr) {
    return Status::FailedPrecondition("wal: writer is closed");
  }
  REGAL_RETURN_NOT_OK(safety::CheckFailpoint(kFailpointWalAppend));
  // Encode outside the buffer lock (text frames LZ-compress, which must
  // not stall the flusher's swap), into a scratch reused across appends.
  scratch_.clear();
  uint64_t lsn = next_lsn_;
  for (size_t i = 0; i < count; ++i) {
    REGAL_RETURN_NOT_OK(AppendWalRecordTo(&scratch_, lsn++, batch[i]));
  }
  size_t buffered = 0;
  {
    std::lock_guard<std::mutex> buf_lock(buf_mu_);
    if (!background_error_.ok()) return background_error_;
    buffer_.append(scratch_);
    buffered = buffer_.size();
  }
  unsynced_records_.fetch_add(static_cast<int64_t>(count),
                              std::memory_order_relaxed);
  // Lsns are consumed only once the bytes are buffered: a failed append
  // must leave the writer reusable without holes in the sequence.
  *first_lsn = next_lsn_;
  next_lsn_ = lsn;
  records_counter_->Increment(static_cast<int64_t>(count));
  return MaybeSync(buffered);
}

Status WalWriter::MaybeSync(size_t buffered) {
  switch (options_.sync) {
    case SyncPolicy::kAlways:
      return WriteOut(/*sync=*/true);
    case SyncPolicy::kInterval: {
      if (flusher_.joinable()) {
        if (buffered >= kBackpressureBytes) {
          // Backpressure: wait for the flusher's in-flight write instead
          // of duelling it with a second one through file_mu_ — it wakes
          // us the moment the buffer drains.
          std::unique_lock<std::mutex> lk(buf_mu_);
          flusher_cv_.notify_one();
          drained_cv_.wait(lk, [&] {
            return !background_error_.ok() ||
                   buffer_.size() < kBackpressureBytes;
          });
          return background_error_;
        }
        if (buffered >= kFlushBytes &&
            flusher_idle_.load(std::memory_order_relaxed)) {
          // Enough accumulated that waiting out the time cadence would
          // just grow the buffer; nudge the flusher early.
          flusher_cv_.notify_one();
        }
        return Status::OK();
      }
      if (unsynced_records_.load(std::memory_order_relaxed) >=
          options_.sync_every_records) {
        return WriteOut(/*sync=*/true);
      }
      if (buffered >= kFlushBytes) return WriteOut(/*sync=*/false);
      return Status::OK();
    }
    case SyncPolicy::kNever:
      if (buffered >= kFlushBytes) return WriteOut(/*sync=*/false);
      return Status::OK();
  }
  return Status::OK();
}

Status WalWriter::WriteOut(bool sync) {
  std::lock_guard<std::mutex> file_lock(file_mu_);
  if (file_ == nullptr) {
    return Status::FailedPrecondition("wal: writer is closed");
  }
  // Ping-pong with spare_ (file_mu_-guarded) instead of moving the string
  // out: both buffers keep their grown capacity, so steady-state appends
  // and swaps allocate nothing and never free memory across threads.
  spare_.clear();
  int64_t pending = 0;
  {
    std::lock_guard<std::mutex> buf_lock(buf_mu_);
    buffer_.swap(spare_);
    pending = unsynced_records_.load(std::memory_order_relaxed);
  }
  std::string& take = spare_;
  if (!take.empty()) {
    Status appended = RetryWithBackoff(
        options_.retry, /*context=*/nullptr, "wal-append",
        [&] { return file_->Append(take); });
    if (!appended.ok()) {
      // Put the frames back in front of anything appended meanwhile, so a
      // later attempt still writes them in lsn order.
      std::lock_guard<std::mutex> buf_lock(buf_mu_);
      take.append(buffer_);
      buffer_ = std::move(take);
      return appended;
    }
    file_dirty_ = true;
    bytes_counter_->Increment(static_cast<int64_t>(take.size()));
    size_gauge_->Add(static_cast<double>(take.size()));
  }
  if (!sync || !file_dirty_) return Status::OK();
  REGAL_RETURN_NOT_OK(safety::CheckFailpoint(kFailpointWalSync));
  REGAL_RETURN_NOT_OK(RetryWithBackoff(options_.retry, /*context=*/nullptr,
                                       "wal-sync",
                                       [&] { return file_->Sync(); }));
  file_dirty_ = false;
  syncs_counter_->Increment();
  // Everything counted at swap time is on disk now; records appended while
  // the fsync ran are still pending and stay counted.
  unsynced_records_.fetch_sub(pending, std::memory_order_relaxed);
  return Status::OK();
}

void WalWriter::FlusherLoop() {
  const auto cadence =
      std::chrono::duration<double, std::milli>(options_.sync_interval_ms);
  std::unique_lock<std::mutex> lk(buf_mu_);
  while (true) {
    // The idle flag lets appends skip the notify syscall while the flusher
    // is busy writing — it re-checks the predicate itself before waiting.
    flusher_idle_.store(true, std::memory_order_relaxed);
    // Time-based group commit: sleep out the cadence, then fsync whatever
    // arrived — the faster mutations come, the more each fsync amortizes.
    // A full buffer (or shutdown) cuts the sleep short.
    flusher_cv_.wait_for(lk, cadence, [&] {
      return stop_flusher_ || buffer_.size() >= kFlushBytes;
    });
    flusher_idle_.store(false, std::memory_order_relaxed);
    if (stop_flusher_) return;
    if (buffer_.empty() &&
        unsynced_records_.load(std::memory_order_relaxed) == 0) {
      continue;  // Idle tick: nothing buffered, nothing awaiting fsync.
    }
    lk.unlock();
    Status synced = WriteOut(/*sync=*/true);
    lk.lock();
    drained_cv_.notify_all();
    if (!synced.ok()) {
      // Fail-stop: surface the error to the next Append (sticky) rather
      // than churning retries forever on a dead device. Close() still
      // makes its own final attempt.
      if (background_error_.ok()) background_error_ = synced;
      return;
    }
  }
}

void WalWriter::StopFlusher() {
  if (!flusher_.joinable()) return;
  {
    std::lock_guard<std::mutex> lk(buf_mu_);
    stop_flusher_ = true;
  }
  flusher_cv_.notify_one();
  flusher_.join();
}

Status WalWriter::Flush() { return WriteOut(/*sync=*/false); }

Status WalWriter::Sync() { return WriteOut(/*sync=*/true); }

Status WalWriter::Close() {
  StopFlusher();
  if (file_ == nullptr) return Status::OK();
  Status sync = WriteOut(/*sync=*/true);
  Status close = file_->Close();
  file_.reset();
  REGAL_RETURN_NOT_OK(sync);
  return close;
}

}  // namespace recovery
}  // namespace regal
