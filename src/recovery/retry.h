#ifndef REGAL_RECOVERY_RETRY_H_
#define REGAL_RECOVERY_RETRY_H_

#include <functional>

#include "safety/context.h"
#include "util/random.h"
#include "util/status.h"

namespace regal {
namespace recovery {

/// Capped exponential backoff with deterministic jitter for transient
/// storage I/O. The WAL writer and the checkpointer wrap every env
/// operation in RetryWithBackoff, so a momentary EIO or a filling disk
/// (ENOSPC that a log-rotation is about to relieve) does not fail a
/// mutation that one more attempt would have landed.
struct RetryPolicy {
  /// Total tries including the first; <= 1 disables retrying.
  int max_attempts = 4;
  /// Sleep before the first retry; doubled (times `multiplier`) per retry.
  double initial_backoff_ms = 0.5;
  /// Ceiling on a single sleep.
  double max_backoff_ms = 50.0;
  double multiplier = 2.0;
  /// Seed for the jitter Rng: the sleep sequence is reproducible from
  /// (policy, seed) alone, like everything else in the fault harnesses.
  uint64_t jitter_seed = 0x5eed;
  /// Test hook: when set, called instead of actually sleeping (the fake
  /// clock that makes backoff tests take microseconds, not seconds).
  std::function<void(double ms)> sleeper;
};

/// Capped exponential backoff with *full* jitter (AWS-style): attempt k
/// (1-based) sleeps uniform[0, min(max, initial * multiplier^(k-1))].
/// Shared by the resilient query client and anything else that retries
/// against a shared service: full jitter (rather than the storage loop's
/// half-range jitter above) is what de-synchronizes a thundering herd of
/// clients all refused at the same instant — the whole range spreads them
/// across the window instead of clustering near its top.
struct BackoffPolicy {
  double initial_backoff_ms = 10.0;
  double max_backoff_ms = 2000.0;
  double multiplier = 2.0;

  /// The delay before retry number `attempt` (1-based), sampled from
  /// `jitter`. Deterministic from (policy, Rng state): the property tests
  /// replay exact sleep sequences from a seed.
  double DelayMs(int attempt, Rng* jitter) const;

  /// The jitter-free ceiling for retry `attempt` — DelayMs is uniform in
  /// [0, CapMs(attempt)]. Exposed so tests state the bound exactly.
  double CapMs(int attempt) const;
};

/// The retryability predicate: true for the Status codes transient I/O
/// surfaces as — kResourceExhausted (ENOSPC/EDQUOT, which log rotation or
/// an operator can relieve) and kInternal (EIO and friends, which a
/// controller hiccup produces and a re-issue often cures). Permanent
/// verdicts — kDataLoss (the bytes rotted; retrying re-reads the same rot),
/// kNotFound, kInvalidArgument, kFailedPrecondition — are never retried.
bool IsTransientIo(const Status& status);

/// Runs `op` until it succeeds, fails permanently, exhausts
/// `policy.max_attempts`, or `context` (optional) reports its deadline
/// passed / cancellation — whichever comes first. Sleeps between attempts
/// per the policy, with each sleep capped so it cannot overrun the
/// context's deadline. Returns the last non-OK status on failure. Records
/// regal_recovery_retries_total{outcome}.
Status RetryWithBackoff(const RetryPolicy& policy,
                        const safety::QueryContext* context, const char* what,
                        const std::function<Status()>& op);

}  // namespace recovery
}  // namespace regal

#endif  // REGAL_RECOVERY_RETRY_H_
