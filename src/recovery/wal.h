#ifndef REGAL_RECOVERY_WAL_H_
#define REGAL_RECOVERY_WAL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/instance.h"
#include "core/region_set.h"
#include "obs/metrics.h"
#include "recovery/retry.h"
#include "storage/env.h"
#include "util/status.h"

namespace regal {
namespace recovery {

/// Failpoint sites on the journaling pipeline (safety/failpoint.h): e.g.
/// REGAL_FAILPOINTS="wal.sync=0.01@7" makes one fsync in a hundred fail.
inline constexpr char kFailpointWalAppend[] = "wal.append";
inline constexpr char kFailpointWalSync[] = "wal.sync";
inline constexpr char kFailpointRecoveryReplay[] = "recovery.replay";
inline constexpr char kFailpointCheckpointSwap[] = "checkpoint.swap";

/// The mutations the engine journals. Every kind has *set-to-value*
/// semantics (replace, never increment), so replaying a record that the
/// snapshot already contains converges to the same state — the idempotence
/// the LSN-less REGAL2 snapshot relies on when a crash lands between the
/// snapshot rename and the checkpoint-manifest write.
enum class MutationKind : uint8_t {
  kDefineRegions = 0x01,   ///< AddRegionSet (upserts on replay).
  kReplaceRegions = 0x02,  ///< SetRegionSet.
  kBindText = 0x03,        ///< Replace the text content (index rebuilt).
  kSetPattern = 0x04,      ///< SetSyntheticPattern by cache key.
};

/// One journaled Instance mutation, in memory.
struct Mutation {
  MutationKind kind = MutationKind::kDefineRegions;
  /// Region name (kDefineRegions/kReplaceRegions) or pattern cache key
  /// (kSetPattern); unused for kBindText.
  std::string name;
  RegionSet regions;
  /// Text content for kBindText.
  std::string text;

  static Mutation DefineRegions(std::string name, RegionSet regions);
  static Mutation ReplaceRegions(std::string name, RegionSet regions);
  static Mutation BindText(std::string text);
  static Mutation SetPattern(const Pattern& pattern, RegionSet regions);
};

/// Applies `m` to `instance` with upsert semantics (see MutationKind).
/// kBindText rebuilds the suffix-array word index. The only failure mode is
/// a malformed pattern cache key (InvalidArgument).
Status ApplyMutation(Instance* instance, const Mutation& m);

/// --- WAL file format -----------------------------------------------------
///
/// header:  "REGALW\0" + format version 0x01                       (8 bytes)
/// record:  u32 crc32c(over the next 13+len bytes)                 (4)
///          u32 len       payload length                           (4)
///          u64 lsn       strictly increasing, never reused        (8)
///          u8  kind      MutationKind                             (1)
///          payload[len]  kind-specific (storage/wire.h encoding)
///
/// payloads:
///   regions/pattern: u32 name_len, name, then the snapshot's region-list
///                    encoding (u64 count, count x zigzag-varint
///                    left-delta + width) reused verbatim — compactness
///                    matters because under SyncPolicy::kInterval every
///                    journaled byte goes through fsync on the flusher's
///                    cadence, so bytes/record sets the device bandwidth
///                    a busy mutator demands
///   text:            u8 codec (0 stored / 1 LZ), u64 raw_size, bytes
///
/// The CRC covers len, lsn, kind and payload, so a torn write, a flipped
/// bit, or a record spliced from another log is rejected as a unit. Records
/// are appended whole (one Append per group commit), and replay stops at
/// the first frame that overruns the file, fails its CRC, or decodes to
/// garbage — everything before that point is trusted, everything after is
/// the torn tail a crash may leave and is truncated away on recovery.

/// Size of the WAL file header.
inline constexpr size_t kWalHeaderSize = 8;

/// The header bytes (exposed for tests and for WAL reset).
std::string WalHeader();

/// Encodes one record frame (header NOT included) — the unit the format
/// known-answer tests pin down.
Result<std::string> EncodeWalRecord(uint64_t lsn, const Mutation& m);

/// Outcome of reading a WAL tail.
struct WalReadResult {
  /// Decoded records in file order (lsn strictly increasing).
  std::vector<std::pair<uint64_t, Mutation>> records;
  /// Highest lsn seen (0 when none).
  uint64_t last_lsn = 0;
  /// Byte offset of the first invalid frame — the truncation point that
  /// makes the file clean again.
  uint64_t valid_bytes = 0;
  /// Bytes past valid_bytes (0 for a clean log).
  uint64_t dropped_tail_bytes = 0;
  /// Why reading stopped, when it stopped early (human-readable).
  std::string tail_error;
};

/// Parses WAL bytes. Never fails on a damaged tail — that is the expected
/// post-crash state, reported via dropped_tail_bytes/tail_error — but does
/// fail (kDataLoss) when the 8-byte header itself is wrong, which no crash
/// of this writer can produce. An empty/absent file reads as zero records.
Result<WalReadResult> ReadWalBytes(std::string_view bytes);

/// How aggressively appended records are made durable.
enum class SyncPolicy {
  kAlways,    ///< fsync every Append/AppendBatch — zero acknowledged loss.
  kInterval,  ///< fsync on a bounded cadence — bounded loss (see options).
  kNever,     ///< fsync only at checkpoints — crash may lose the tail.
};

const char* SyncPolicyName(SyncPolicy policy);

struct WalWriterOptions {
  SyncPolicy sync = SyncPolicy::kAlways;
  /// For SyncPolicy::kInterval with background_sync: the flusher thread
  /// fsyncs on this time cadence, the classic bounded-loss contract (an
  /// fsync every few milliseconds covers however many records arrived).
  /// A time cadence, unlike a record threshold, amortizes better the
  /// faster mutations arrive — which is exactly when fsync pressure would
  /// otherwise price mutations out.
  double sync_interval_ms = 5.0;
  /// For SyncPolicy::kInterval without background_sync (inline mode):
  /// fsync on the mutating thread once this many records accumulate since
  /// the last sync.
  int64_t sync_every_records = 32;
  /// Run kInterval fsyncs on a dedicated flusher thread (the default), so
  /// the mutating thread only appends to the in-memory group-commit buffer
  /// and never waits on the device. Memory stays bounded: once the buffer
  /// reaches a backpressure cap, appends block until the flusher drains
  /// it. Disable for deterministic single-threaded fault injection — the
  /// crash matrix counts env syscalls, and a second thread would shuffle
  /// them.
  bool background_sync = true;
  /// Transient-I/O retry applied to every append and sync.
  RetryPolicy retry;
};

/// Appends mutation records to a WAL file through an Env. Append / Sync /
/// Close must come from one thread at a time (the engine serializes
/// mutations under its catalog lock); the writer manages its own flusher
/// thread internally when background sync is enabled.
///
/// Appends are encoded straight into an in-memory buffer and pushed to the
/// file in one write per sync point (true group commit: under
/// SyncPolicy::kInterval that is one write + one fsync per flusher cadence
/// tick, covering every mutation that arrived since the last one, instead
/// of a write syscall each).
/// Buffered-but-unsynced records sit in exactly the loss window the chosen
/// sync policy already accepts — bytes in the kernel page cache are no more
/// durable against a crash than bytes in this buffer — so the policy's
/// acknowledgment contract is unchanged: on OK under kAlways the record is
/// flushed AND fsynced before Append returns.
class WalWriter {
 public:
  /// Opens `path` for appending (creating it with a header when absent or
  /// empty). `next_lsn` is the lsn the first appended record receives —
  /// recovery passes max(replayed, checkpointed) + 1 so lsns never repeat.
  static Result<std::unique_ptr<WalWriter>> Open(storage::Env* env,
                                                 std::string path,
                                                 uint64_t next_lsn,
                                                 WalWriterOptions options);

  /// Joins the flusher thread. Does NOT fsync — an abandoned writer loses
  /// only what its sync policy already put at risk; call Close() to drain.
  ~WalWriter();

  /// Journals one mutation: appends its frame and applies the sync policy.
  /// On OK with SyncPolicy::kAlways the record is durable ("acknowledged").
  Status Append(const Mutation& m, uint64_t* lsn = nullptr);

  /// Group commit: one frame concatenation, one env Append, at most one
  /// fsync for the whole batch. The per-mutation fsync is what makes
  /// SyncPolicy::kAlways expensive; batching amortizes it N-fold.
  Status AppendBatch(const std::vector<Mutation>& batch,
                     std::vector<uint64_t>* lsns = nullptr);

  /// Writes the append buffer to the file without fsyncing — the durable
  /// boundary stays wherever the last Sync() put it.
  Status Flush();

  /// Flush + fsync (checkpoint prologue, SyncPolicy::kNever close).
  Status Sync();

  Status Close();

  uint64_t next_lsn() const { return next_lsn_; }
  /// Records appended but not yet fsynced (durability debt).
  int64_t unsynced_records() const {
    return unsynced_records_.load(std::memory_order_relaxed);
  }

 private:
  WalWriter(storage::Env* env, std::string path, uint64_t next_lsn,
            WalWriterOptions options);

  Status AppendCore(const Mutation* batch, size_t count,
                    uint64_t* first_lsn);
  /// Applies the sync policy after an append that left `buffered` bytes in
  /// the group-commit buffer (measured under buf_mu_ by the caller).
  Status MaybeSync(size_t buffered);
  /// Moves the buffer into the file (fsyncing too when `sync`). file_mu_
  /// serializes writers — the mutator, the flusher, checkpoint callers —
  /// and taking the buffer under it keeps frames in append (= lsn) order.
  Status WriteOut(bool sync);
  void FlusherLoop();
  void StopFlusher();

  storage::Env* env_;
  const std::string path_;
  uint64_t next_lsn_;  ///< Mutator-thread only.
  WalWriterOptions options_;
  std::string scratch_;  ///< Mutator-only encode scratch, reused per append.

  // Cached handles: metric lookups are a mutex + map probe, too hot for a
  // per-append path.
  obs::Counter* records_counter_;
  obs::Counter* bytes_counter_;
  obs::Counter* syncs_counter_;
  obs::Gauge* size_gauge_;

  /// Serializes file writes. Always acquired before buf_mu_.
  std::mutex file_mu_;
  std::unique_ptr<storage::WritableFile> file_;
  bool file_dirty_ = false;  ///< File bytes written since the last fsync.
  /// WriteOut's swap partner for buffer_: both keep their grown capacity,
  /// so the steady-state handoff never allocates.
  std::string spare_;

  /// Guards buffer_, background_error_, stop_flusher_.
  std::mutex buf_mu_;
  std::string buffer_;  ///< Encoded frames not yet written to the file.
  Status background_error_;  ///< First flusher failure; sticky.
  bool stop_flusher_ = false;
  std::condition_variable flusher_cv_;   ///< Wakes the flusher.
  std::condition_variable drained_cv_;   ///< Wakes backpressured appends.
  std::thread flusher_;
  /// True while the flusher sleeps on flusher_cv_ — appends skip the
  /// notify syscall when it is already busy writing.
  std::atomic<bool> flusher_idle_{false};

  std::atomic<int64_t> unsynced_records_{0};
};

}  // namespace recovery
}  // namespace regal

#endif  // REGAL_RECOVERY_WAL_H_
