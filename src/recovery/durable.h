#ifndef REGAL_RECOVERY_DURABLE_H_
#define REGAL_RECOVERY_DURABLE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/instance.h"
#include "recovery/retry.h"
#include "recovery/wal.h"
#include "storage/env.h"
#include "storage/snapshot.h"
#include "util/status.h"

namespace regal {
namespace recovery {

/// Durable catalog directory layout (all paths under one directory so a
/// single SyncDir covers every commit):
///
///   <dir>/snapshot.regal           last checkpointed REGAL2 snapshot
///   <dir>/wal.log                  mutations journaled since then
///   <dir>/CHECKPOINT               manifest: the snapshot's high-water lsn
///   <dir>/*.quarantine.<n>         corrupted files set aside, never deleted
///
/// Manifest format: "REGALCK" + version 0x01 (8 bytes), u64 checkpoint lsn,
/// u32 crc32c over the first 16 bytes — 20 bytes, always written atomically.
///
/// The crash-consistency argument (chaos-tested at every syscall boundary):
/// a mutation is acknowledged only after its WAL record is durable (under
/// SyncPolicy::kAlways), and every mutation kind is set-to-value, so replay
/// is idempotent. Checkpointing goes sync-WAL -> snapshot -> manifest ->
/// WAL reset, each step atomic; whichever step a crash lands on, recovery
/// replays records with lsn > manifest lsn over the snapshot and converges
/// to the pre-crash acknowledged state. A stale manifest only causes extra
/// idempotent replay; a lost WAL reset only replays records the snapshot
/// already contains.
struct DurableOptions {
  WalWriterOptions wal;
  /// Journaled records that trigger ShouldCheckpoint() (0 = never
  /// automatically; the engine's background checkpointer consults this).
  int64_t checkpoint_every_records = 4096;
  /// Retry policy for checkpoint/open I/O (the WAL has its own in `wal`).
  RetryPolicy retry;
};

/// What recovery found, surfaced on /statusz ("recovery" section).
struct RecoveryHealth {
  /// True while serving salvaged (possibly incomplete) data; cleared by the
  /// first successful checkpoint, which rewrites a clean snapshot.
  bool degraded = false;
  /// Where the corrupted snapshot/WAL was set aside, empty when none.
  std::vector<std::string> quarantined;
  storage::SalvageReport salvage;
  uint64_t checkpoint_lsn = 0;  ///< Manifest lsn at open.
  uint64_t replayed_records = 0;
  uint64_t skipped_records = 0;  ///< lsn <= checkpoint_lsn (already in snap).
  uint64_t torn_tail_bytes = 0;  ///< WAL bytes truncated at open.
  /// Human-readable damage notes, newest last.
  std::vector<std::string> notes;
};

/// Owns the WAL + snapshot + manifest of one durable catalog. Journaling
/// and checkpointing are not thread-safe; the engine serializes them under
/// its catalog lock.
class DurableStore {
 public:
  /// Opens (or creates) the store in `dir`, recovering `*instance`:
  /// manifest -> snapshot (quarantine + salvage on corruption, never a
  /// refusal unless even salvage finds nothing identifiable) -> WAL replay
  /// past the checkpoint lsn with torn-tail truncation -> writer reopen.
  /// The recovered instance always carries a fresh (id, epoch), so result
  /// caches keyed to a pre-crash catalog cannot serve stale answers.
  static Result<std::unique_ptr<DurableStore>> Open(storage::Env* env,
                                                    std::string dir,
                                                    DurableOptions options,
                                                    Instance* instance);

  /// Journals one mutation (durable per the sync policy on return). The
  /// caller applies it to its instance only after this succeeds —
  /// journal-then-apply is what makes "acknowledged" mean "recoverable".
  Status Journal(const Mutation& m, uint64_t* lsn = nullptr);

  /// Group commit: all-or-nothing append, at most one fsync.
  Status JournalBatch(const std::vector<Mutation>& batch);

  /// Writes a clean snapshot of `instance` (which must reflect every
  /// journaled mutation), advances the manifest and resets the WAL. Clears
  /// degraded health: the corrupted file stays quarantined but the serving
  /// state is clean again.
  Status Checkpoint(const Instance& instance);

  /// True when journaled records since the last checkpoint reach the
  /// configured threshold (or when open left the store degraded). Reads
  /// only atomics, so a background checkpointer may poll it without the
  /// catalog lock that serializes every other method here.
  bool ShouldCheckpoint() const;

  /// Guarded by the caller's serialization (the engine's catalog lock).
  const RecoveryHealth& health() const { return health_; }
  bool degraded() const {
    return degraded_.load(std::memory_order_relaxed);
  }
  uint64_t last_lsn() const { return last_lsn_; }
  uint64_t checkpoint_lsn() const { return checkpoint_lsn_; }
  int64_t records_since_checkpoint() const {
    return records_since_checkpoint_.load(std::memory_order_relaxed);
  }

  const std::string& dir() const { return dir_; }
  std::string SnapshotPath() const;
  std::string WalPath() const;
  std::string ManifestPath() const;

  /// Flushes and closes the WAL writer (further journaling fails).
  Status Close();

  /// Best-effort Close(): a cleanly destructed store must not discard the
  /// buffered WAL tail — only a crash gets to do that, and only within the
  /// sync policy's loss window. Errors are swallowed (there is no caller
  /// to surface them to); use Close() to observe them.
  ~DurableStore();

 private:
  DurableStore(storage::Env* env, std::string dir, DurableOptions options)
      : env_(env), dir_(std::move(dir)), options_(std::move(options)) {}

  /// Moves `path` to the first free `<path>.quarantine.<n>` through the
  /// Env — corrupted bytes are evidence and are never deleted.
  Status Quarantine(const std::string& path, const std::string& why);

  Status ResetWal();

  storage::Env* env_;
  std::string dir_;
  DurableOptions options_;
  std::unique_ptr<WalWriter> writer_;
  RecoveryHealth health_;
  uint64_t checkpoint_lsn_ = 0;
  uint64_t last_lsn_ = 0;
  // Atomic mirrors of health_.degraded / the journal counter: the only
  // fields ShouldCheckpoint() may read from another thread.
  std::atomic<bool> degraded_{false};
  std::atomic<int64_t> records_since_checkpoint_{0};
};

}  // namespace recovery
}  // namespace regal

#endif  // REGAL_RECOVERY_DURABLE_H_
