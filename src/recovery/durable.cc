#include "recovery/durable.h"

#include <utility>

#include "obs/metrics.h"
#include "safety/failpoint.h"
#include "storage/checksum.h"
#include "storage/wire.h"
#include "util/timer.h"

namespace regal {
namespace recovery {

namespace {

// "REGALCK" + manifest format version 1.
constexpr char kManifestMagic[8] = {'R', 'E', 'G', 'A', 'L', 'C', 'K', '\x01'};
constexpr size_t kManifestSize = 8 + 8 + 4;  // magic + lsn + crc.

std::string EncodeManifest(uint64_t checkpoint_lsn) {
  std::string out(kManifestMagic, 8);
  storage::PutU64(&out, checkpoint_lsn);
  storage::PutU32(&out, storage::Crc32c(out));
  return out;
}

Result<uint64_t> DecodeManifest(std::string_view bytes) {
  if (bytes.size() != kManifestSize ||
      bytes.substr(0, 8) != std::string_view(kManifestMagic, 8)) {
    return Status::DataLoss("manifest: bad size or magic");
  }
  if (storage::Crc32c(bytes.substr(0, 16)) !=
      storage::GetU32(bytes.data() + 16)) {
    return Status::DataLoss("manifest: checksum mismatch");
  }
  return storage::GetU64(bytes.data() + 8);
}

obs::Counter* OpensCounter(const char* outcome) {
  return obs::Registry::Default().GetCounter("regal_recovery_opens_total",
                                             {{"outcome", outcome}});
}

}  // namespace

std::string DurableStore::SnapshotPath() const {
  return dir_ + "/snapshot.regal";
}
std::string DurableStore::WalPath() const { return dir_ + "/wal.log"; }
std::string DurableStore::ManifestPath() const { return dir_ + "/CHECKPOINT"; }

Result<std::unique_ptr<DurableStore>> DurableStore::Open(
    storage::Env* env, std::string dir, DurableOptions options,
    Instance* instance) {
  if (env == nullptr) env = storage::Env::Default();
  if (instance == nullptr) {
    return Status::InvalidArgument("durable open: null instance out-param");
  }
  obs::Registry& registry = obs::Registry::Default();
  Timer open_timer;
  std::unique_ptr<DurableStore> store(
      new DurableStore(env, std::move(dir), std::move(options)));
  RecoveryHealth& health = store->health_;

  // "Opens (or creates)": a first open on a fresh machine should not make
  // the caller pre-create the directory. Existing stores skip the mkdir,
  // so fault-injection op counts are untouched.
  if (!env->FileExists(store->dir_)) {
    REGAL_RETURN_NOT_OK(env->CreateDirs(store->dir_));
  }

  // 1. Manifest. A corrupt manifest degrades to lsn 0: replay is
  // idempotent, so re-applying records the snapshot already contains is
  // merely wasted work, never wrong answers.
  if (env->FileExists(store->ManifestPath())) {
    Result<std::string> bytes = env->ReadFileToString(store->ManifestPath());
    Result<uint64_t> lsn =
        bytes.ok() ? DecodeManifest(*bytes) : bytes.status();
    if (lsn.ok()) {
      store->checkpoint_lsn_ = *lsn;
    } else {
      REGAL_RETURN_NOT_OK(store->Quarantine(store->ManifestPath(),
                                            lsn.status().message()));
      health.degraded = true;
    }
  }
  health.checkpoint_lsn = store->checkpoint_lsn_;

  // 2. Snapshot: decode, or quarantine + salvage what the per-section
  // checksums still vouch for.
  Instance recovered;
  if (env->FileExists(store->SnapshotPath())) {
    REGAL_ASSIGN_OR_RETURN(std::string bytes,
                           env->ReadFileToString(store->SnapshotPath()));
    Result<Instance> loaded = storage::LooksLikeRegal2(bytes)
                                  ? storage::DecodeSnapshot(bytes)
                                  : Status::DataLoss(
                                        "snapshot: not a REGAL2 file");
    if (loaded.ok()) {
      recovered = std::move(loaded).value();
    } else {
      REGAL_RETURN_NOT_OK(store->Quarantine(store->SnapshotPath(),
                                            loaded.status().message()));
      health.degraded = true;
      Result<Instance> salvaged =
          storage::SalvageSnapshot(bytes, &health.salvage);
      if (salvaged.ok()) {
        recovered = std::move(salvaged).value();
        health.notes.push_back(
            "snapshot salvaged: kept " +
            std::to_string(health.salvage.sections_kept) + ", dropped " +
            std::to_string(health.salvage.sections_dropped) + " sections");
      } else {
        // Not even the magic survived: start empty and let the WAL replay
        // rebuild whatever it covers.
        health.notes.push_back("snapshot unsalvageable: " +
                               salvaged.status().message());
      }
    }
  }

  // 3. WAL replay past the checkpoint, truncating the torn tail so the
  // reopened writer appends onto trusted bytes only.
  uint64_t wal_last_lsn = 0;
  if (env->FileExists(store->WalPath())) {
    REGAL_ASSIGN_OR_RETURN(std::string bytes,
                           env->ReadFileToString(store->WalPath()));
    Result<WalReadResult> read = ReadWalBytes(bytes);
    if (!read.ok()) {
      // Header damage — no crash of ours writes that; set the file aside
      // and start a fresh log.
      REGAL_RETURN_NOT_OK(
          store->Quarantine(store->WalPath(), read.status().message()));
      health.degraded = true;
    } else {
      for (const auto& [lsn, mutation] : read->records) {
        if (lsn <= store->checkpoint_lsn_) {
          ++health.skipped_records;
          continue;
        }
        REGAL_RETURN_NOT_OK(safety::CheckFailpoint(kFailpointRecoveryReplay));
        REGAL_RETURN_NOT_OK(ApplyMutation(&recovered, mutation));
        ++health.replayed_records;
      }
      wal_last_lsn = read->last_lsn;
      if (read->dropped_tail_bytes > 0) {
        health.torn_tail_bytes = read->dropped_tail_bytes;
        health.notes.push_back(
            "wal: dropped " + std::to_string(read->dropped_tail_bytes) +
            " torn tail bytes (" + read->tail_error + ")");
        REGAL_RETURN_NOT_OK(RetryWithBackoff(
            store->options_.retry, /*context=*/nullptr, "wal-truncate", [&] {
              return env->TruncateFile(store->WalPath(), read->valid_bytes);
            }));
        registry.GetCounter("regal_recovery_torn_bytes_total")
            ->Increment(static_cast<int64_t>(read->dropped_tail_bytes));
      }
    }
  }
  registry.GetCounter("regal_recovery_replayed_records_total")
      ->Increment(static_cast<int64_t>(health.replayed_records));

  store->last_lsn_ = std::max(store->checkpoint_lsn_, wal_last_lsn);
  // Replayed records are not yet in any snapshot; make the next checkpoint
  // fold them in (and ShouldCheckpoint() heal a degraded open promptly).
  store->records_since_checkpoint_.store(
      static_cast<int64_t>(health.replayed_records),
      std::memory_order_relaxed);
  store->degraded_.store(health.degraded, std::memory_order_relaxed);

  REGAL_ASSIGN_OR_RETURN(
      store->writer_,
      WalWriter::Open(env, store->WalPath(), store->last_lsn_ + 1,
                      store->options_.wal));

  *instance = std::move(recovered);
  OpensCounter(health.degraded ? "degraded" : "clean")->Increment();
  registry
      .GetHistogram("regal_recovery_open_latency_ms")
      ->Observe(open_timer.Millis());
  return store;
}

Status DurableStore::Quarantine(const std::string& path,
                                const std::string& why) {
  std::string target;
  for (int n = 0;; ++n) {
    target = path + ".quarantine." + std::to_string(n);
    if (!env_->FileExists(target)) break;
  }
  REGAL_RETURN_NOT_OK(
      RetryWithBackoff(options_.retry, /*context=*/nullptr, "quarantine",
                       [&] { return env_->RenameFile(path, target); }));
  // Make the rename itself durable: a crash must not resurrect the
  // corrupted file under its live name.
  REGAL_RETURN_NOT_OK(env_->SyncDir(storage::ParentDir(path)));
  health_.quarantined.push_back(target);
  health_.notes.push_back("quarantined " + path + " -> " + target + ": " +
                          why);
  obs::Registry::Default()
      .GetCounter("regal_recovery_quarantines_total")
      ->Increment();
  return Status::OK();
}

Status DurableStore::Journal(const Mutation& m, uint64_t* lsn) {
  if (writer_ == nullptr) {
    return Status::FailedPrecondition("durable store is closed");
  }
  REGAL_RETURN_NOT_OK(writer_->Append(m, lsn));
  last_lsn_ = writer_->next_lsn() - 1;
  records_since_checkpoint_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status DurableStore::JournalBatch(const std::vector<Mutation>& batch) {
  if (writer_ == nullptr) {
    return Status::FailedPrecondition("durable store is closed");
  }
  REGAL_RETURN_NOT_OK(writer_->AppendBatch(batch));
  last_lsn_ = writer_->next_lsn() - 1;
  records_since_checkpoint_.fetch_add(static_cast<int64_t>(batch.size()),
                                      std::memory_order_relaxed);
  return Status::OK();
}

bool DurableStore::ShouldCheckpoint() const {
  if (degraded_.load(std::memory_order_relaxed)) return true;
  return options_.checkpoint_every_records > 0 &&
         records_since_checkpoint_.load(std::memory_order_relaxed) >=
             options_.checkpoint_every_records;
}

Status DurableStore::Checkpoint(const Instance& instance) {
  if (writer_ == nullptr) {
    return Status::FailedPrecondition("durable store is closed");
  }
  obs::Registry& registry = obs::Registry::Default();
  auto fail = [&](const Status& status) {
    registry
        .GetCounter("regal_recovery_checkpoints_total",
                    {{"outcome", "error"}})
        ->Increment();
    return status;
  };
  const uint64_t target_lsn = last_lsn_;
  // 1. The snapshot, atomically. Crash here: old snapshot + old manifest +
  // full WAL — recovery replays everything, as before the attempt.
  Status saved = RetryWithBackoff(
      options_.retry, /*context=*/nullptr, "checkpoint-snapshot",
      [&] { return storage::SaveSnapshotToFile(instance, SnapshotPath(),
                                               env_); });
  if (!saved.ok()) return fail(saved);
  // 2. The manifest — the checkpoint's commit point. Crash between 1 and
  // 2: new snapshot, old manifest; replay re-applies records the snapshot
  // already holds, which set-to-value semantics make a no-op.
  REGAL_RETURN_NOT_OK(safety::CheckFailpoint(kFailpointCheckpointSwap));
  Status manifest = RetryWithBackoff(
      options_.retry, /*context=*/nullptr, "checkpoint-manifest", [&] {
        return storage::AtomicWriteFile(env_, ManifestPath(),
                                        EncodeManifest(target_lsn));
      });
  if (!manifest.ok()) return fail(manifest);
  // 3. WAL reset. Crash between 2 and 3: full WAL survives but every
  // record is lsn <= manifest lsn, so replay skips it all.
  Status reset = ResetWal();
  if (!reset.ok()) return fail(reset);

  checkpoint_lsn_ = target_lsn;
  records_since_checkpoint_.store(0, std::memory_order_relaxed);
  degraded_.store(false, std::memory_order_relaxed);
  if (health_.degraded) {
    // The serving state just became a clean, complete snapshot: healed.
    health_.degraded = false;
    health_.notes.push_back("healed by checkpoint at lsn " +
                            std::to_string(target_lsn));
  }
  health_.checkpoint_lsn = target_lsn;
  registry
      .GetCounter("regal_recovery_checkpoints_total", {{"outcome", "ok"}})
      ->Increment();
  return Status::OK();
}

Status DurableStore::ResetWal() {
  // Close first so the writer's descriptor does not outlive the rename
  // (an orphaned fd would keep appending to the doomed inode).
  REGAL_RETURN_NOT_OK(writer_->Close());
  writer_.reset();
  Status fresh = RetryWithBackoff(
      options_.retry, /*context=*/nullptr, "wal-reset",
      [&] { return storage::AtomicWriteFile(env_, WalPath(), WalHeader()); });
  REGAL_RETURN_NOT_OK(fresh);
  REGAL_ASSIGN_OR_RETURN(
      writer_, WalWriter::Open(env_, WalPath(), last_lsn_ + 1, options_.wal));
  return Status::OK();
}

Status DurableStore::Close() {
  if (writer_ == nullptr) return Status::OK();
  Status closed = writer_->Close();
  writer_.reset();
  return closed;
}

DurableStore::~DurableStore() {
  Status closed = Close();
  (void)closed;
}

}  // namespace recovery
}  // namespace regal
