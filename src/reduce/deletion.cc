#include "reduce/deletion.h"

#include "core/algebra.h"

namespace regal {

Instance DeleteRegions(const Instance& instance, const RegionSet& to_delete) {
  Instance out = instance.Clone();
  for (const std::string& name : instance.names()) {
    const RegionSet& set = **instance.Get(name);
    out.SetRegionSet(name, Difference(set, to_delete));
  }
  // Restrict synthetic pattern tables (if any) by re-adding only surviving
  // regions. Text-backed W is positional and unaffected by deletion.
  // Clone() carried the tables over; intersect them with the survivors.
  // (Handled implicitly: Instance::Select intersects with the operand set,
  // and W() on a deleted region is never asked by the evaluator since
  // deleted regions are in no name set.)
  return out;
}

bool IsSDeletedVersion(const Instance& original, const Instance& deleted,
                       const RegionSet& s) {
  // Same name universe.
  if (original.names().size() != deleted.names().size()) return false;
  for (const std::string& name : original.names()) {
    if (!deleted.Has(name)) return false;
    const RegionSet& before = **original.Get(name);
    const RegionSet& after = **deleted.Get(name);
    // after ⊆ before.
    if (!Difference(after, before).empty()) return false;
  }
  // Every region of S survives under its original name.
  for (const Region& r : s) {
    int idx = original.TreeFind(r);
    if (idx < 0) return false;
    const std::string& name =
        original.names()[static_cast<size_t>(original.TreeNameId(
            static_cast<size_t>(idx)))];
    if (!(*deleted.Get(name))->Member(r)) return false;
  }
  return true;
}

}  // namespace regal
