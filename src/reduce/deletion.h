#ifndef REGAL_REDUCE_DELETION_H_
#define REGAL_REDUCE_DELETION_H_

#include "core/instance.h"
#include "core/region_set.h"

namespace regal {

/// Section 4.1 machinery. An instance I' is an *S-deleted version* of I if
/// it was obtained from I by deleting some regions while keeping all the
/// regions of S (Theorem 4.1). Note that deleting a region removes only
/// that region's identity, never the text it spans, so the remaining
/// regions keep their endpoints; synthetic pattern tables are restricted to
/// the survivors.

/// Deletes `to_delete` from every region set of `instance` (regions not
/// present are ignored).
Instance DeleteRegions(const Instance& instance, const RegionSet& to_delete);

/// True iff `deleted` is an S-deleted version of `original`: its regions
/// are a subset of the original's with unchanged names and pattern
/// memberships, and every region of S survives.
bool IsSDeletedVersion(const Instance& original, const Instance& deleted,
                       const RegionSet& s);

}  // namespace regal

#endif  // REGAL_REDUCE_DELETION_H_
