#ifndef REGAL_REDUCE_REDUCE_H_
#define REGAL_REDUCE_REDUCE_H_

#include <map>
#include <vector>

#include "core/instance.h"
#include "text/pattern.h"
#include "util/status.h"

namespace regal {

/// Section 4.2 machinery: region isomorphism, the reduce operation, and the
/// order-preservation condition behind k-reduced versions (Definition 4.3).

/// The mapping h defined by a sequence of reduce operations: deleted
/// regions map to their isomorphic images, surviving regions to themselves.
using RegionMapping = std::map<Region, Region, RegionDocumentOrder>;

/// True iff r1 and r2 are isomorphic w.r.t. `patterns` (Definition 4.2):
/// their subtrees match as ordered trees preserving region names and
/// W(·, p) for every p, and their ancestor chains coincide (so the
/// surrounding context S_r agrees; for the sibling configurations used in
/// the paper's proofs the chains are literally the same regions).
bool AreIsomorphic(const Instance& instance, const Region& r1,
                   const Region& r2, const std::vector<Pattern>& patterns);

struct ReduceResult {
  Instance instance;      // I with S_{r1}'s subtree removed.
  RegionMapping mapping;  // h: deleted regions -> their images under τ.
};

/// reduce(I, r1, r2): tests isomorphism and, if it holds, deletes r1's
/// subtree (r1 and all regions included in it), returning the reduced
/// instance and the mapping h. FailedPrecondition if not isomorphic.
Result<ReduceResult> Reduce(const Instance& instance, const Region& r1,
                            const Region& r2,
                            const std::vector<Pattern>& patterns);

/// Applies h (identity on regions missing from the mapping).
Region ApplyMapping(const RegionMapping& h, const Region& r);

/// How strictly to check Definition 4.3's order condition.
enum class OrderCheckMode {
  /// Only the forward direction: r < s in I implies a witness
  /// t ~ s with h_k(r) < t in I'. This is the direction the Theorem 4.4
  /// induction consumes (order facts of I are recoverable in I').
  kForwardOnly,
  /// The literal biconditional of Definition 4.3.
  ///
  /// REPRODUCTION FINDING (see EXPERIMENTS.md): taken literally, the
  /// biconditional FAILS on the paper's own Figure 3 construction — with
  /// s = the first twin A, the equivalence class of s under h_{k-1}
  /// contains the A of the *next* C container, so regions like the middle
  /// B acquire a witness (B < A_next in I') for the false fact
  /// "B < firstA in I". The extended abstract's definition appears to
  /// over-quantify; the forward direction is what the proofs need and it
  /// holds.
  kBiconditional,
};

/// Checks Definition 4.3's order condition for one step: I' was obtained
/// from I with mapping h_k, and I'' further reduces I' with mapping
/// h_prime. The class of s is {t ∈ I' : h_prime(t) == h_prime(h_k(s))};
/// the check is brute force over all region pairs of I.
Status CheckKReducedOrderCondition(const Instance& original,
                                   const Instance& reduced,
                                   const RegionMapping& h_k,
                                   const RegionMapping& h_prime,
                                   OrderCheckMode mode);

}  // namespace regal

#endif  // REGAL_REDUCE_REDUCE_H_
