#include "reduce/reduce.h"

#include <functional>

#include "reduce/deletion.h"

namespace regal {

namespace {

// Children lists for the instance tree, in document order.
std::vector<std::vector<int>> ChildrenLists(const Instance& instance) {
  std::vector<std::vector<int>> children(instance.TreeSize());
  for (size_t i = 0; i < instance.TreeSize(); ++i) {
    int p = instance.TreeParent(i);
    if (p >= 0) children[static_cast<size_t>(p)].push_back(static_cast<int>(i));
  }
  return children;
}

bool SameLabels(const Instance& instance, int u, int v,
                const std::vector<Pattern>& patterns) {
  if (instance.TreeNameId(static_cast<size_t>(u)) !=
      instance.TreeNameId(static_cast<size_t>(v))) {
    return false;
  }
  const Region& ru = instance.TreeRegion(static_cast<size_t>(u));
  const Region& rv = instance.TreeRegion(static_cast<size_t>(v));
  for (const Pattern& p : patterns) {
    if (instance.W(ru, p) != instance.W(rv, p)) return false;
  }
  return true;
}

bool SubtreesIsomorphic(const Instance& instance,
                        const std::vector<std::vector<int>>& children, int u,
                        int v, const std::vector<Pattern>& patterns,
                        std::vector<std::pair<int, int>>* pairs) {
  if (!SameLabels(instance, u, v, patterns)) return false;
  const auto& cu = children[static_cast<size_t>(u)];
  const auto& cv = children[static_cast<size_t>(v)];
  if (cu.size() != cv.size()) return false;
  if (pairs != nullptr) pairs->emplace_back(u, v);
  for (size_t i = 0; i < cu.size(); ++i) {
    if (!SubtreesIsomorphic(instance, children, cu[i], cv[i], patterns,
                            pairs)) {
      return false;
    }
  }
  return true;
}

}  // namespace

bool AreIsomorphic(const Instance& instance, const Region& r1,
                   const Region& r2, const std::vector<Pattern>& patterns) {
  int u = instance.TreeFind(r1);
  int v = instance.TreeFind(r2);
  if (u < 0 || v < 0 || u == v) return false;
  // Ancestor chains must match level by level on names and patterns (the
  // "regions containing r" part of S_r).
  int pu = instance.TreeParent(static_cast<size_t>(u));
  int pv = instance.TreeParent(static_cast<size_t>(v));
  while (pu >= 0 && pv >= 0) {
    if (!SameLabels(instance, pu, pv, patterns)) return false;
    pu = instance.TreeParent(static_cast<size_t>(pu));
    pv = instance.TreeParent(static_cast<size_t>(pv));
  }
  if (pu != pv) return false;  // Different depths.
  std::vector<std::vector<int>> children = ChildrenLists(instance);
  return SubtreesIsomorphic(instance, children, u, v, patterns, nullptr);
}

Result<ReduceResult> Reduce(const Instance& instance, const Region& r1,
                            const Region& r2,
                            const std::vector<Pattern>& patterns) {
  int u = instance.TreeFind(r1);
  int v = instance.TreeFind(r2);
  if (u < 0 || v < 0) {
    return Status::NotFound("reduce: region not in the instance");
  }
  if (!AreIsomorphic(instance, r1, r2, patterns)) {
    return Status::FailedPrecondition("reduce: regions are not isomorphic");
  }
  std::vector<std::vector<int>> children = ChildrenLists(instance);
  std::vector<std::pair<int, int>> pairs;
  SubtreesIsomorphic(instance, children, u, v, patterns, &pairs);
  ReduceResult out;
  std::vector<Region> deleted;
  for (const auto& [du, dv] : pairs) {
    const Region& from = instance.TreeRegion(static_cast<size_t>(du));
    const Region& to = instance.TreeRegion(static_cast<size_t>(dv));
    deleted.push_back(from);
    out.mapping[from] = to;
  }
  out.instance =
      DeleteRegions(instance, RegionSet::FromUnsorted(std::move(deleted)));
  return out;
}

Region ApplyMapping(const RegionMapping& h, const Region& r) {
  auto it = h.find(r);
  return it == h.end() ? r : it->second;
}

Status CheckKReducedOrderCondition(const Instance& original,
                                   const Instance& reduced,
                                   const RegionMapping& h_k,
                                   const RegionMapping& h_prime,
                                   OrderCheckMode mode) {
  RegionSet all = original.AllRegions();
  RegionSet surviving = reduced.AllRegions();
  auto h_k_of = [&](const Region& r) { return ApplyMapping(h_k, r); };
  for (const Region& r : all) {
    for (const Region& s : all) {
      bool before = Precedes(r, s);
      // ∃t ∈ I' with h_prime(t) == h_prime(h_k(s)) and h_k(r) < t in I'.
      Region target = ApplyMapping(h_prime, h_k_of(s));
      bool witness = false;
      for (const Region& t : surviving) {
        if (ApplyMapping(h_prime, t) == target && Precedes(h_k_of(r), t)) {
          witness = true;
          break;
        }
      }
      bool violated = (mode == OrderCheckMode::kBiconditional)
                          ? (before != witness)
                          : (before && !witness);
      if (violated) {
        return Status::FailedPrecondition(
            "order condition violated for r=" + regal::ToString(r) +
            " s=" + regal::ToString(s) + (before ? " (lost)" : " (spurious)"));
      }
    }
  }
  return Status::OK();
}

}  // namespace regal
