#ifndef REGAL_TEXT_TEXT_H_
#define REGAL_TEXT_TEXT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace regal {

/// A byte offset into an indexed text. 32 bits covers the corpus sizes this
/// library targets (the PAT literature indexed the OED, ~570 MB; we keep the
/// type narrow for cache-friendliness of region lists).
using Offset = int32_t;

/// An immutable text buffer with offset <-> line/column mapping.
///
/// All regions produced by the library use *inclusive* endpoint offsets into
/// one Text (left = offset of the first byte, right = offset of the last
/// byte), matching the endpoint arithmetic of the paper (e.g. `r precedes s`
/// iff `right(r) < left(s)`).
class Text {
 public:
  Text() = default;
  explicit Text(std::string content);

  const std::string& content() const { return content_; }
  Offset size() const { return static_cast<Offset>(content_.size()); }

  /// Substring covered by the inclusive range [left, right].
  /// Requires 0 <= left <= right < size().
  std::string_view Slice(Offset left, Offset right) const;

  /// 1-based line number of `offset`. Requires 0 <= offset < size().
  int LineOf(Offset offset) const;

  /// 1-based column of `offset` within its line.
  int ColumnOf(Offset offset) const;

  /// A short single-line excerpt around [left, right], ellipsized to at most
  /// `max_len` characters; newlines are replaced by spaces. For diagnostics
  /// and example output.
  std::string Snippet(Offset left, Offset right, int max_len = 60) const;

 private:
  std::string content_;
  std::vector<Offset> line_starts_;  // Offset of the first byte of each line.
};

}  // namespace regal

#endif  // REGAL_TEXT_TEXT_H_
