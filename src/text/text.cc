#include "text/text.h"

#include <algorithm>

namespace regal {

Text::Text(std::string content) : content_(std::move(content)) {
  line_starts_.push_back(0);
  for (size_t i = 0; i < content_.size(); ++i) {
    if (content_[i] == '\n' && i + 1 < content_.size()) {
      line_starts_.push_back(static_cast<Offset>(i + 1));
    }
  }
}

std::string_view Text::Slice(Offset left, Offset right) const {
  return std::string_view(content_).substr(static_cast<size_t>(left),
                                           static_cast<size_t>(right - left + 1));
}

int Text::LineOf(Offset offset) const {
  auto it = std::upper_bound(line_starts_.begin(), line_starts_.end(), offset);
  return static_cast<int>(it - line_starts_.begin());
}

int Text::ColumnOf(Offset offset) const {
  int line = LineOf(offset);
  return static_cast<int>(offset - line_starts_[static_cast<size_t>(line - 1)]) + 1;
}

std::string Text::Snippet(Offset left, Offset right, int max_len) const {
  std::string out(Slice(left, right));
  for (char& c : out) {
    if (c == '\n' || c == '\t' || c == '\r') c = ' ';
  }
  if (static_cast<int>(out.size()) > max_len) {
    out.resize(static_cast<size_t>(max_len - 3));
    out += "...";
  }
  return out;
}

}  // namespace regal
