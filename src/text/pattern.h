#ifndef REGAL_TEXT_PATTERN_H_
#define REGAL_TEXT_PATTERN_H_

#include <string>
#include <string_view>

#include "util/status.h"

namespace regal {

/// A word pattern for the selection operator sigma_p. The paper makes no
/// assumption about the pattern language (it models the word index as an
/// opaque predicate W(r, p)); we provide the language actually offered by
/// PAT-era systems:
///
///   foo       exact word match
///   foo*      prefix match
///   *foo      suffix match
///   *foo*     infix (substring-of-word) match
///   f?o       `?` matches exactly one character (anywhere in the body)
///   (flag)    ASCII case-insensitive matching
///
/// A pattern matches *tokens* (words); W(r, p) holds iff some token lying
/// inside region r matches p. Both word-index implementations share this
/// semantics so they can be cross-checked.
class Pattern {
 public:
  /// Parses the textual pattern syntax above. Errors on an empty body
  /// (e.g. "", "*", "**").
  static Result<Pattern> Parse(std::string_view spec,
                               bool case_insensitive = false);

  /// Inverse of CacheKey(): parses "s:<spec>" / "i:<spec>".
  static Result<Pattern> FromCacheKey(std::string_view key);

  /// True iff the whole token matches this pattern.
  bool MatchesToken(std::string_view token) const;

  /// The longest wildcard-free literal run of the pattern body, used by
  /// suffix-array indexes to narrow candidates before a full match. For
  /// case-insensitive patterns the core is lower-cased.
  const std::string& LiteralCore() const { return literal_core_; }

  /// Offset of the literal core within the pattern body.
  int CoreOffsetInBody() const { return core_offset_; }

  bool anchored_front() const { return anchored_front_; }
  bool anchored_back() const { return anchored_back_; }
  bool case_insensitive() const { return case_insensitive_; }

  /// The body (pattern text without the leading/trailing '*').
  const std::string& body() const { return body_; }

  /// Canonical textual form (re-parsable).
  std::string ToString() const;

  /// Stable key used to memoize selection results and to name the monadic
  /// predicate Q_{n+j} assigned to this pattern in FMFT models.
  std::string CacheKey() const;

  bool operator==(const Pattern& other) const {
    return body_ == other.body_ && anchored_front_ == other.anchored_front_ &&
           anchored_back_ == other.anchored_back_ &&
           case_insensitive_ == other.case_insensitive_;
  }

 private:
  Pattern() = default;

  std::string body_;          // Pattern text without anchors; may contain '?'.
  std::string literal_core_;  // Longest '?'-free run of body_ (lower-cased if ci).
  int core_offset_ = 0;
  bool anchored_front_ = true;  // No leading '*'.
  bool anchored_back_ = true;   // No trailing '*'.
  bool case_insensitive_ = false;
};

}  // namespace regal

#endif  // REGAL_TEXT_PATTERN_H_
