#include "text/tokenizer.h"

#include "util/stringutil.h"

namespace regal {

std::vector<Token> Tokenize(std::string_view text) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    if (!IsIdentChar(text[i])) {
      ++i;
      continue;
    }
    size_t start = i;
    while (i < n && IsIdentChar(text[i])) ++i;
    tokens.push_back(Token{static_cast<Offset>(start),
                           static_cast<Offset>(i - 1)});
  }
  return tokens;
}

std::string_view TokenText(std::string_view text, const Token& t) {
  return text.substr(static_cast<size_t>(t.left),
                     static_cast<size_t>(t.right - t.left + 1));
}

}  // namespace regal
