#include "text/pattern.h"

#include "util/stringutil.h"

namespace regal {

namespace {

// True iff `token` matches `body` where '?' matches any single char.
// Both strings must have equal length.
bool BodyMatches(std::string_view body, std::string_view token,
                 bool case_insensitive) {
  if (body.size() != token.size()) return false;
  for (size_t i = 0; i < body.size(); ++i) {
    char b = body[i];
    if (b == '?') continue;
    char t = token[i];
    if (case_insensitive) {
      b = ToLowerAscii(b);
      t = ToLowerAscii(t);
    }
    if (b != t) return false;
  }
  return true;
}

}  // namespace

Result<Pattern> Pattern::Parse(std::string_view spec, bool case_insensitive) {
  Pattern p;
  p.case_insensitive_ = case_insensitive;
  std::string_view body = spec;
  if (!body.empty() && body.front() == '*') {
    p.anchored_front_ = false;
    body.remove_prefix(1);
  }
  if (!body.empty() && body.back() == '*') {
    p.anchored_back_ = false;
    body.remove_suffix(1);
  }
  if (body.empty()) {
    return Status::InvalidArgument("pattern '" + std::string(spec) +
                                   "' has an empty body");
  }
  if (body.find('*') != std::string_view::npos) {
    return Status::InvalidArgument(
        "'*' is only allowed at the ends of a pattern: '" + std::string(spec) +
        "'");
  }
  p.body_ = std::string(body);

  // Longest '?'-free run.
  size_t best_start = 0;
  size_t best_len = 0;
  size_t run_start = 0;
  for (size_t i = 0; i <= body.size(); ++i) {
    if (i == body.size() || body[i] == '?') {
      if (i - run_start > best_len) {
        best_len = i - run_start;
        best_start = run_start;
      }
      run_start = i + 1;
    }
  }
  p.literal_core_ = std::string(body.substr(best_start, best_len));
  if (case_insensitive) p.literal_core_ = ToLowerAscii(p.literal_core_);
  p.core_offset_ = static_cast<int>(best_start);
  return p;
}

Result<Pattern> Pattern::FromCacheKey(std::string_view key) {
  if (key.size() < 2 || key[1] != ':' || (key[0] != 's' && key[0] != 'i')) {
    return Status::InvalidArgument("'" + std::string(key) +
                                   "' is not a pattern cache key");
  }
  return Parse(key.substr(2), /*case_insensitive=*/key[0] == 'i');
}

bool Pattern::MatchesToken(std::string_view token) const {
  if (anchored_front_ && anchored_back_) {
    return BodyMatches(body_, token, case_insensitive_);
  }
  if (token.size() < body_.size()) return false;
  if (anchored_front_) {
    return BodyMatches(body_, token.substr(0, body_.size()), case_insensitive_);
  }
  if (anchored_back_) {
    return BodyMatches(body_, token.substr(token.size() - body_.size()),
                       case_insensitive_);
  }
  for (size_t i = 0; i + body_.size() <= token.size(); ++i) {
    if (BodyMatches(body_, token.substr(i, body_.size()), case_insensitive_)) {
      return true;
    }
  }
  return false;
}

std::string Pattern::ToString() const {
  std::string out;
  if (!anchored_front_) out += '*';
  out += body_;
  if (!anchored_back_) out += '*';
  return out;
}

std::string Pattern::CacheKey() const {
  return (case_insensitive_ ? "i:" : "s:") + ToString();
}

}  // namespace regal
