#ifndef REGAL_TEXT_TOKENIZER_H_
#define REGAL_TEXT_TOKENIZER_H_

#include <string_view>
#include <vector>

#include "text/text.h"

namespace regal {

/// A word occurrence: inclusive byte range [left, right] within a Text.
/// These are the "match points" of the PAT word index, widened to carry the
/// token extent so that W(r, p) can test full containment in r.
struct Token {
  Offset left;
  Offset right;  // Inclusive offset of the last byte.

  bool operator==(const Token& other) const {
    return left == other.left && right == other.right;
  }
};

/// Splits text into tokens: maximal runs of [A-Za-z0-9_]. Deterministic and
/// locale independent. Both word-index implementations tokenize with this
/// function so their W(r, p) predicates agree.
std::vector<Token> Tokenize(std::string_view text);

/// The token text for `t` within `text`.
std::string_view TokenText(std::string_view text, const Token& t);

}  // namespace regal

#endif  // REGAL_TEXT_TOKENIZER_H_
