#include "cache/result_cache.h"

#include <algorithm>
#include <utility>

#include "safety/failpoint.h"

namespace regal {
namespace cache {

namespace {

// Bookkeeping estimate per entry: LRU node, index slot, key, and the
// canonical expression skeleton. Deliberately coarse — the payload
// (regions) dominates for every entry worth caching.
constexpr int64_t kEntryOverheadBytes = 256;

size_t RoundUpPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

ResultCache::ResultCache(ResultCacheOptions options)
    : options_(options),
      shards_(RoundUpPowerOfTwo(std::max<size_t>(1, options.shards))) {
  shard_max_bytes_ =
      std::max<int64_t>(1, options_.max_bytes /
                               static_cast<int64_t>(shards_.size()));
  obs::Registry& registry = obs::Registry::Default();
  hits_ = registry.GetCounter("regal_cache_hits_total");
  misses_ = registry.GetCounter("regal_cache_misses_total");
  inserts_ = registry.GetCounter("regal_cache_inserts_total");
  evictions_ = registry.GetCounter("regal_cache_evictions_total");
  insert_failures_ = registry.GetCounter("regal_cache_insert_failures_total");
  bytes_gauge_ = registry.GetGauge("regal_cache_bytes");
  hit_ratio_gauge_ = registry.GetGauge("regal_cache_hit_ratio");
}

void ResultCache::PublishHitRatio() const {
  // Lifetime ratio from the lock-free counters: cheap enough to refresh on
  // every lookup, and scrape-time consistent enough for an efficiency gauge.
  const double hits = static_cast<double>(hits_->value());
  const double misses = static_cast<double>(misses_->value());
  if (hits + misses > 0) hit_ratio_gauge_->Set(hits / (hits + misses));
}

int64_t ResultCache::EntryBytes(const RegionSet& value) {
  return static_cast<int64_t>(value.size() * sizeof(Region)) +
         kEntryOverheadBytes;
}

bool ResultCache::MatchesLocked(const Entry& entry, const Key& key,
                                const ExprPtr& canonical) const {
  return entry.key.instance_id == key.instance_id &&
         entry.key.epoch == key.epoch &&
         entry.key.fingerprint == key.fingerprint &&
         entry.canonical->Equals(*canonical);
}

std::shared_ptr<const RegionSet> ResultCache::Lookup(const Key& key,
                                                     const ExprPtr& canonical,
                                                     CacheQueryStats* stats) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto [lo, hi] = shard.index.equal_range(key.fingerprint);
  for (auto it = lo; it != hi; ++it) {
    if (MatchesLocked(*it->second, key, canonical)) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      hits_->Increment();
      PublishHitRatio();
      if (stats != nullptr) ++stats->hits;
      return it->second->value;
    }
  }
  misses_->Increment();
  PublishHitRatio();
  if (stats != nullptr) ++stats->misses;
  return nullptr;
}

void ResultCache::EraseLocked(Shard& shard, std::list<Entry>::iterator it) {
  auto [lo, hi] = shard.index.equal_range(it->key.fingerprint);
  for (auto idx = lo; idx != hi; ++idx) {
    if (idx->second == it) {
      shard.index.erase(idx);
      break;
    }
  }
  shard.bytes -= it->bytes;
  shard.lru.erase(it);
}

bool ResultCache::Insert(const Key& key, const ExprPtr& canonical,
                         std::shared_ptr<const RegionSet> value,
                         CacheQueryStats* stats) {
  const int64_t entry_bytes = EntryBytes(*value);
  if (entry_bytes > shard_max_bytes_) {
    insert_failures_->Increment();
    if (stats != nullptr) ++stats->insert_failures;
    return false;
  }
  Shard& shard = ShardFor(key);
  int64_t evicted = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto [lo, hi] = shard.index.equal_range(key.fingerprint);
    for (auto it = lo; it != hi; ++it) {
      if (MatchesLocked(*it->second, key, canonical)) {
        // Another query already published this result; keep the incumbent
        // (the values are equal by construction) and refresh its position.
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        return false;
      }
    }
    while (shard.bytes + entry_bytes > shard_max_bytes_) {
      // Failpoint: eviction under pressure. A fired site abandons the
      // insert — the cache is best-effort, the query result still stands.
      if (safety::FailpointFires("cache.evict.pressure")) {
        insert_failures_->Increment();
        if (stats != nullptr) ++stats->insert_failures;
        return false;
      }
      EraseLocked(shard, std::prev(shard.lru.end()));
      ++evicted;
    }
    shard.lru.push_front(Entry{key, canonical, std::move(value), entry_bytes});
    shard.index.emplace(key.fingerprint, shard.lru.begin());
    shard.bytes += entry_bytes;
  }
  inserts_->Increment();
  if (evicted > 0) evictions_->Increment(evicted);
  if (stats != nullptr) {
    ++stats->inserts;
    stats->evictions += evicted;
  }
  PublishBytes();
  return true;
}

void ResultCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.lru.clear();
    shard.index.clear();
    shard.bytes = 0;
  }
  PublishBytes();
}

int64_t ResultCache::bytes() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.bytes;
  }
  return total;
}

int64_t ResultCache::entries() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += static_cast<int64_t>(shard.lru.size());
  }
  return total;
}

void ResultCache::PublishBytes() const { bytes_gauge_->Set(bytes()); }

}  // namespace cache
}  // namespace regal
