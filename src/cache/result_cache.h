#ifndef REGAL_CACHE_RESULT_CACHE_H_
#define REGAL_CACHE_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/expr.h"
#include "core/region_set.h"
#include "obs/metrics.h"

namespace regal {
namespace cache {

/// Sizing knobs for a ResultCache. Defaults suit one mid-sized catalog; the
/// engine exposes the cache so deployments can tune it.
struct ResultCacheOptions {
  /// Total byte budget across all shards (region payloads plus a fixed
  /// per-entry overhead estimate). Split evenly; each shard evicts LRU-first
  /// to stay under its slice.
  int64_t max_bytes = int64_t{64} << 20;
  /// Number of independently locked shards, rounded up to a power of two.
  /// Entries land on shards by fingerprint, so concurrent queries touching
  /// different expressions rarely contend.
  size_t shards = 8;
};

/// One query's view of cache activity, filled by the evaluator/engine and
/// reported in the `explain analyze` cache envelope (QueryProfile::Json()).
struct CacheQueryStats {
  int64_t hits = 0;        // Subtrees short-circuited from the cache.
  int64_t misses = 0;      // Probes that found nothing.
  int64_t inserts = 0;     // Results newly published to the cache.
  int64_t evictions = 0;   // Entries this query's inserts pushed out.
  int64_t insert_failures = 0;  // Inserts abandoned (pressure/failpoint).
};

/// A byte-accounted, sharded LRU cache of materialized query results,
/// shared across queries. Keys are (instance id, instance epoch, canonical
/// expression fingerprint); a fingerprint match is verified against the
/// stored canonical expression (Expr::CanonicalEquals' normal form), so a
/// 64-bit collision can never surface a wrong result. Invalidation is by
/// epoch: mutating the instance bumps Instance::epoch(), stale entries stop
/// matching and age out through the LRU lists.
///
/// Thread-safe: lookups and inserts from concurrent queries (and from the
/// parallel evaluator's pool threads) lock only the shard they touch.
/// Callers that evaluate with `bindings` (materialized views) must not
/// reuse one cache across binding changes for the same instance — the
/// engine guarantees this (view names are define-once).
///
/// Activity is exported through obs as regal_cache_hits_total,
/// regal_cache_misses_total, regal_cache_inserts_total,
/// regal_cache_evictions_total, regal_cache_insert_failures_total and the
/// regal_cache_bytes / regal_cache_hit_ratio gauges (the latter refreshed on
/// every lookup, so a /metrics scrape always sees the current lifetime
/// ratio). The eviction loop carries the
/// `cache.evict.pressure` failpoint: when armed and firing, the insert is
/// abandoned instead of evicting — the degradation a deployment must
/// survive when eviction cannot keep up.
class ResultCache {
 public:
  struct Key {
    uint64_t instance_id = 0;
    uint64_t epoch = 0;
    uint64_t fingerprint = 0;
  };

  explicit ResultCache(ResultCacheOptions options = {});
  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// The cached result for `key`, or nullptr. `canonical` must be the
  /// canonical form whose fingerprint is key.fingerprint; it disambiguates
  /// fingerprint collisions. A hit refreshes the entry's LRU position.
  std::shared_ptr<const RegionSet> Lookup(const Key& key,
                                          const ExprPtr& canonical,
                                          CacheQueryStats* stats = nullptr);

  /// Publishes `value` under `key`, evicting LRU entries as needed. False
  /// when the insert was abandoned: the entry alone exceeds the shard
  /// budget, the eviction failpoint fired, or an equal entry already
  /// exists (another query won the race; not counted as a failure).
  bool Insert(const Key& key, const ExprPtr& canonical,
              std::shared_ptr<const RegionSet> value,
              CacheQueryStats* stats = nullptr);

  /// Drops every entry (tests; engines invalidate by epoch instead).
  void Clear();

  int64_t bytes() const;    // Current accounted footprint.
  int64_t entries() const;  // Current entry count.
  int64_t max_bytes() const { return options_.max_bytes; }

  /// Accounted footprint of one entry: the region payload plus a fixed
  /// estimate for the canonical expression and bookkeeping.
  static int64_t EntryBytes(const RegionSet& value);

 private:
  struct Entry {
    Key key;
    ExprPtr canonical;
    std::shared_ptr<const RegionSet> value;
    int64_t bytes = 0;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // Front = most recently used.
    std::unordered_multimap<uint64_t, std::list<Entry>::iterator> index;
    int64_t bytes = 0;
  };

  Shard& ShardFor(const Key& key) {
    return shards_[key.fingerprint & (shards_.size() - 1)];
  }
  bool MatchesLocked(const Entry& entry, const Key& key,
                     const ExprPtr& canonical) const;
  void EraseLocked(Shard& shard, std::list<Entry>::iterator it);
  void PublishBytes() const;
  void PublishHitRatio() const;

  ResultCacheOptions options_;
  int64_t shard_max_bytes_ = 0;
  std::vector<Shard> shards_;

  // Registry pointers resolved once; increments are lock-free.
  obs::Counter* hits_;
  obs::Counter* misses_;
  obs::Counter* inserts_;
  obs::Counter* evictions_;
  obs::Counter* insert_failures_;
  obs::Gauge* bytes_gauge_;
  obs::Gauge* hit_ratio_gauge_;
};

}  // namespace cache
}  // namespace regal

#endif  // REGAL_CACHE_RESULT_CACHE_H_
