#ifndef REGAL_ADMIN_ADMIN_SERVER_H_
#define REGAL_ADMIN_ADMIN_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "server/net.h"
#include "util/status.h"
#include "util/timer.h"

namespace regal {
namespace admin {

/// Configuration for the embedded admin endpoint. The defaults are the safe
/// ones: loopback only, ephemeral port, process-wide registry and recorder.
struct AdminOptions {
  /// Address to bind. Loopback by default — this surface exposes query
  /// text and corpus structure, so binding wider is an explicit decision.
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  int port = 0;
  /// Metrics source for /metrics; null means obs::Registry::Default().
  obs::Registry* registry = nullptr;
  /// Trace source for /tracez; null means obs::FlightRecorder::Default().
  obs::FlightRecorder* recorder = nullptr;
};

/// A /statusz section: a titled list of key/value rows, produced on demand.
/// Callbacks run on the server thread and must be thread-safe against the
/// process they describe.
using StatusRows = std::vector<std::pair<std::string, std::string>>;
using StatusSource = std::function<StatusRows()>;

/// The embedded admin endpoint: a deliberately minimal HTTP/1.0 server,
/// serving
///
///   /healthz   liveness probe ("ok")
///   /metrics   Prometheus text exposition of the registry
///              (?format=json for the JSON exporter)
///   /statusz   build info, uptime, and every registered status section
///              (?format=json)
///   /tracez    recent flight-recorder entries, plans rendered with
///              FormatSpanTree (?format=json emits QueryRecord::Json)
///
/// Built on the hardened socket layer (server/net.h): sends suppress
/// SIGPIPE, and the accept loop retries transient failures (counted in
/// regal_admin_accept_errors_total) instead of dying — only Stop() ends
/// it. Connections are served on a small pool of per-connection threads
/// (a handful — scrapes and operators, not user traffic; the multi-tenant
/// query service is the real front-end), so a slow scraper no longer
/// blocks /healthz. Requests are capped at 8 KiB, only GET is answered,
/// and the response always closes the connection, so a misbehaving client
/// can never hold a handler for longer than one socket timeout.
class AdminServer {
 public:
  /// Binds, listens and starts the serving thread. Fails with kInternal
  /// when the address/port cannot be bound (kInvalidArgument for a
  /// malformed address).
  static Result<std::unique_ptr<AdminServer>> Start(AdminOptions options = {});

  ~AdminServer();
  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// Stops accepting and joins the serving thread. Idempotent.
  void Stop();

  /// The bound port (resolves port 0 requests).
  int port() const { return listener_.port(); }

  /// Registers a /statusz section. Sections render in registration order
  /// under their name. Thread-safe.
  void AddStatusSection(std::string name, StatusSource source);

 private:
  explicit AdminServer(AdminOptions options);

  void Serve();
  void HandleConnection(int fd);
  /// Routes one request; fills body/content type, returns the HTTP status.
  int Route(const std::string& path, std::string* body,
            std::string* content_type);

  std::string MetricsBody(bool json) const;
  std::string StatuszBody(bool json) const;
  std::string TracezBody(bool json) const;

  AdminOptions options_;
  net::Listener listener_;
  std::atomic<bool> stopping_{false};
  std::thread thread_;
  net::ConnectionSet conns_;
  obs::Counter* accept_errors_ = nullptr;
  Timer uptime_;

  mutable std::mutex sections_mu_;
  std::vector<std::pair<std::string, StatusSource>> sections_;
};

/// Renders a UTC millisecond timestamp as ISO-8601 ("2026-08-07T12:00:00.000Z").
/// Correct for pre-epoch (negative) timestamps too. Exposed for tests.
std::string IsoTime(int64_t ts_ms);

/// Minimal blocking HTTP/1.0 GET client for tests, examples and CLI use —
/// the in-repo `curl`. Returns the response *body*; the status code and
/// content type come back through the out-params when non-null. Fails with
/// kInternal on connect/IO errors and kInvalidArgument on malformed
/// responses.
Result<std::string> HttpGet(const std::string& host, int port,
                            const std::string& path,
                            int* status_code = nullptr,
                            std::string* content_type = nullptr);

}  // namespace admin
}  // namespace regal

#endif  // REGAL_ADMIN_ADMIN_SERVER_H_
