#include "admin/admin_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <ctime>

#include "obs/export.h"
#include "obs/json.h"
#include "obs/prometheus.h"
#include "server/net.h"

namespace regal {
namespace admin {

namespace {

constexpr size_t kMaxRequestBytes = 8192;
constexpr int kSocketTimeoutMs = 5000;
constexpr int kMaxAdminConnections = 8;
constexpr const char* kPrometheusContentType =
    "text/plain; version=0.0.4; charset=utf-8";
constexpr const char* kTextContentType = "text/plain; charset=utf-8";
constexpr const char* kJsonContentType = "application/json";

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    default:
      return "Error";
  }
}

void WriteResponse(int fd, int status, const std::string& content_type,
                   const std::string& body) {
  std::string head = "HTTP/1.0 " + std::to_string(status) + ' ' +
                     ReasonPhrase(status) + "\r\nContent-Type: " +
                     content_type + "\r\nContent-Length: " +
                     std::to_string(body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  if (net::SendAll(fd, head.data(), head.size())) {
    net::SendAll(fd, body.data(), body.size());
  }
}

/// True when the query string carries `key=value` as an exact parameter —
/// a substring search would also match "notformat=json".
bool QueryParamIs(const std::string& query, const std::string& key,
                  const std::string& value) {
  size_t start = 0;
  while (start <= query.size()) {
    size_t end = query.find('&', start);
    if (end == std::string::npos) end = query.size();
    size_t eq = query.find('=', start);
    if (eq != std::string::npos && eq < end &&
        query.compare(start, eq - start, key) == 0 &&
        query.compare(eq + 1, end - eq - 1, value) == 0 &&
        end - eq - 1 == value.size()) {
      return true;
    }
    start = end + 1;
  }
  return false;
}

}  // namespace

std::string IsoTime(int64_t ts_ms) {
  // Floored division: for negative timestamps (pre-epoch) truncation would
  // pair the wrong second with a negative millisecond remainder.
  int64_t secs = ts_ms / 1000;
  int64_t ms = ts_ms % 1000;
  if (ms < 0) {
    ms += 1000;
    --secs;
  }
  std::time_t tsecs = static_cast<std::time_t>(secs);
  struct tm parts;
  gmtime_r(&tsecs, &parts);
  char buf[40];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%S", &parts);
  char out[48];
  std::snprintf(out, sizeof(out), "%s.%03dZ", buf, static_cast<int>(ms));
  return out;
}

AdminServer::AdminServer(AdminOptions options) : options_(std::move(options)) {
  if (options_.registry == nullptr) options_.registry = &obs::Registry::Default();
  if (options_.recorder == nullptr) {
    options_.recorder = &obs::FlightRecorder::Default();
  }
}

Result<std::unique_ptr<AdminServer>> AdminServer::Start(AdminOptions options) {
  // Not make_unique: the constructor is private.
  std::unique_ptr<AdminServer> server(new AdminServer(std::move(options)));
  net::ListenerOptions listen_options;
  listen_options.bind_address = server->options_.bind_address;
  listen_options.port = server->options_.port;
  listen_options.backlog = 16;
  auto listener = net::Listener::Open(listen_options);
  if (!listener.ok()) {
    return Status(listener.status().code(),
                  "admin: " + listener.status().message());
  }
  server->listener_ = std::move(listener).value();
  server->accept_errors_ = obs::Registry::Default().GetCounter(
      "regal_admin_accept_errors_total");
  server->thread_ = std::thread([raw = server.get()] { raw->Serve(); });
  obs::EventLog::Default().Log(
      obs::Severity::kInfo, "admin", "admin endpoint listening", 0,
      {{"address", server->options_.bind_address},
       {"port", std::to_string(server->port())}});
  return server;
}

AdminServer::~AdminServer() { Stop(); }

void AdminServer::Stop() {
  if (!listener_.valid()) return;
  stopping_.store(true, std::memory_order_relaxed);
  // Wakes the blocked accept; Linux fails it with EINVAL once shut down.
  listener_.Shutdown();
  if (thread_.joinable()) thread_.join();
  conns_.ShutdownAndJoin(SHUT_RDWR);
  listener_.Close();
}

void AdminServer::AddStatusSection(std::string name, StatusSource source) {
  std::lock_guard<std::mutex> lock(sections_mu_);
  sections_.emplace_back(std::move(name), std::move(source));
}

void AdminServer::Serve() {
  for (;;) {
    int fd = listener_.AcceptOne(stopping_, accept_errors_);
    if (fd < 0) break;  // Only a stop request ends the loop.
    net::SetSocketTimeouts(fd, kSocketTimeoutMs);
    if (!conns_.Spawn(
            fd, [this](int conn_fd) { HandleConnection(conn_fd); },
            kMaxAdminConnections)) {
      // Over the cap: Spawn already closed the fd. A probe retrying in a
      // few seconds beats queueing behind slow scrapes.
      continue;
    }
  }
}

void AdminServer::HandleConnection(int fd) {
  std::string request;
  char buf[2048];
  while (request.find("\r\n\r\n") == std::string::npos &&
         request.size() < kMaxRequestBytes) {
    ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    request.append(buf, static_cast<size_t>(n));
  }
  size_t line_end = request.find("\r\n");
  if (line_end == std::string::npos) line_end = request.size();
  std::string line = request.substr(0, line_end);
  size_t sp1 = line.find(' ');
  size_t sp2 = line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    WriteResponse(fd, 405, kTextContentType, "malformed request\n");
    return;
  }
  std::string method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (method != "GET") {
    WriteResponse(fd, 405, kTextContentType, "only GET is served here\n");
    return;
  }
  std::string body;
  std::string content_type = kTextContentType;
  int status = Route(target, &body, &content_type);
  WriteResponse(fd, status, content_type, body);
}

int AdminServer::Route(const std::string& target, std::string* body,
                       std::string* content_type) {
  std::string path = target;
  std::string query;
  size_t qmark = target.find('?');
  if (qmark != std::string::npos) {
    path = target.substr(0, qmark);
    query = target.substr(qmark + 1);
  }
  const bool json = QueryParamIs(query, "format", "json");
  if (path == "/healthz") {
    *body = "ok\n";
    return 200;
  }
  if (path == "/metrics") {
    *body = MetricsBody(json);
    *content_type = json ? kJsonContentType : kPrometheusContentType;
    return 200;
  }
  if (path == "/statusz") {
    *body = StatuszBody(json);
    if (json) *content_type = kJsonContentType;
    return 200;
  }
  if (path == "/tracez") {
    *body = TracezBody(json);
    if (json) *content_type = kJsonContentType;
    return 200;
  }
  if (path == "/") {
    *body =
        "regal admin endpoint\n"
        "  /healthz  liveness\n"
        "  /metrics  Prometheus exposition (?format=json)\n"
        "  /statusz  process + subsystem status (?format=json)\n"
        "  /tracez   flight-recorder entries (?format=json)\n";
    return 200;
  }
  *body = "not found\n";
  return 404;
}

std::string AdminServer::MetricsBody(bool json) const {
  std::vector<obs::MetricSnapshot> snapshot = options_.registry->Snapshot();
  return json ? obs::MetricsToJson(snapshot)
              : obs::MetricsToPrometheus(snapshot);
}

std::string AdminServer::StatuszBody(bool json) const {
  std::vector<std::pair<std::string, StatusSource>> sections;
  {
    std::lock_guard<std::mutex> lock(sections_mu_);
    sections = sections_;
  }
  const double uptime_s = uptime_.Seconds();
  const int64_t pid = static_cast<int64_t>(getpid());
  if (json) {
    obs::JsonWriter w;
    w.BeginObject();
    w.Key("server").String("regal-admin");
    w.Key("uptime_s").Double(uptime_s);
    w.Key("pid").Int(pid);
    w.Key("compiler").String(__VERSION__);
    w.Key("sections").BeginObject();
    for (const auto& [name, source] : sections) {
      w.Key(name).BeginObject();
      for (const auto& [key, value] : source()) w.Key(key).String(value);
      w.EndObject();
    }
    w.EndObject();
    w.EndObject();
    return w.Take();
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f", uptime_s);
  std::string out = "regal admin server\n";
  out += "uptime_s: " + std::string(buf) + "\n";
  out += "pid: " + std::to_string(pid) + "\n";
  out += "compiler: " __VERSION__ "\n";
  for (const auto& [name, source] : sections) {
    out += "\n[" + name + "]\n";
    for (const auto& [key, value] : source()) {
      out += key + ": " + value + "\n";
    }
  }
  return out;
}

std::string AdminServer::TracezBody(bool json) const {
  std::vector<obs::QueryRecord> records = options_.recorder->Snapshot();
  if (json) {
    std::string out = "{\"records\":[";
    for (size_t i = 0; i < records.size(); ++i) {
      if (i > 0) out += ',';
      out += records[i].Json();
    }
    out += "]}";
    return out;
  }
  std::string out = "flight recorder: " + std::to_string(records.size()) +
                    " records (newest first), slow threshold " +
                    std::to_string(options_.recorder->slow_threshold_ms()) +
                    " ms\n";
  for (const obs::QueryRecord& record : records) {
    char elapsed[32];
    std::snprintf(elapsed, sizeof(elapsed), "%.3f", record.elapsed_ms);
    out += "\n#" + std::to_string(record.query_id) + ' ' +
           IsoTime(record.ts_ms) + ' ' + record.status_code;
    if (record.slow) out += " slow";
    if (record.sampled) out += " sampled";
    out += ' ' + std::string(elapsed) +
           " ms rows=" + std::to_string(record.rows_out) + "  " +
           record.query + '\n';
    if (!record.ok && !record.status.empty()) {
      out += "  status: " + record.status + '\n';
    }
    std::string tree = obs::FormatSpanTree(record.plan);
    size_t start = 0;
    while (start < tree.size()) {
      size_t end = tree.find('\n', start);
      if (end == std::string::npos) end = tree.size();
      out += "  " + tree.substr(start, end - start) + '\n';
      start = end + 1;
    }
  }
  return out;
}

Result<std::string> HttpGet(const std::string& host, int port,
                            const std::string& path, int* status_code,
                            std::string* content_type) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("http: socket() failed: ") +
                            std::strerror(errno));
  }
  net::SetSocketTimeouts(fd, kSocketTimeoutMs);
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("http: bad host '" + host +
                                   "' (IPv4 literals only)");
  }
  if (connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status status = Status::Internal("http: cannot connect to " + host + ":" +
                                     std::to_string(port) + ": " +
                                     std::strerror(errno));
    close(fd);
    return status;
  }
  std::string request = "GET " + path + " HTTP/1.0\r\nHost: " + host +
                        "\r\nConnection: close\r\n\r\n";
  if (!net::SendAll(fd, request.data(), request.size())) {
    close(fd);
    return Status::Internal("http: send failed");
  }
  std::string response;
  char buf[4096];
  for (;;) {
    ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  close(fd);
  size_t header_end = response.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    return Status::InvalidArgument("http: malformed response (no header end)");
  }
  std::string headers = response.substr(0, header_end);
  size_t line_end = headers.find("\r\n");
  std::string status_line =
      headers.substr(0, line_end == std::string::npos ? headers.size()
                                                      : line_end);
  size_t sp = status_line.find(' ');
  if (sp == std::string::npos || sp + 3 >= status_line.size()) {
    return Status::InvalidArgument("http: malformed status line");
  }
  // An HTTP status is exactly three digits in [100, 599]; atoi would
  // happily accept "abc" as 0 or "99999" as nonsense.
  int parsed_status = 0;
  for (size_t i = sp + 1; i < sp + 4; ++i) {
    char c = status_line[i];
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("http: malformed status code in '" +
                                     status_line + "'");
    }
    parsed_status = parsed_status * 10 + (c - '0');
  }
  if (sp + 4 < status_line.size() && status_line[sp + 4] != ' ') {
    return Status::InvalidArgument("http: malformed status code in '" +
                                   status_line + "'");
  }
  if (parsed_status < 100 || parsed_status > 599) {
    return Status::InvalidArgument("http: status code " +
                                   std::to_string(parsed_status) +
                                   " out of range");
  }
  if (status_code != nullptr) *status_code = parsed_status;
  if (content_type != nullptr) {
    content_type->clear();
    // Header names are case-insensitive (RFC 9110): scan line by line
    // instead of a case-sensitive substring search.
    size_t pos = headers.find("\r\n");
    while (pos != std::string::npos && pos + 2 < headers.size()) {
      size_t start = pos + 2;
      size_t end = headers.find("\r\n", start);
      if (end == std::string::npos) end = headers.size();
      size_t colon = headers.find(':', start);
      if (colon != std::string::npos && colon < end) {
        std::string name = headers.substr(start, colon - start);
        bool match = name.size() == 12;
        static const char* kLower = "content-type";
        for (size_t i = 0; match && i < name.size(); ++i) {
          char c = name[i];
          if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
          match = c == kLower[i];
        }
        if (match) {
          std::string value = headers.substr(colon + 1, end - colon - 1);
          size_t first = value.find_first_not_of(" \t");
          *content_type = first == std::string::npos ? "" : value.substr(first);
          break;
        }
      }
      pos = end == headers.size() ? std::string::npos : end;
    }
  }
  return response.substr(header_end + 4);
}

}  // namespace admin
}  // namespace regal
