
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/algebra.cc" "src/CMakeFiles/regal.dir/core/algebra.cc.o" "gcc" "src/CMakeFiles/regal.dir/core/algebra.cc.o.d"
  "/root/repo/src/core/construct.cc" "src/CMakeFiles/regal.dir/core/construct.cc.o" "gcc" "src/CMakeFiles/regal.dir/core/construct.cc.o.d"
  "/root/repo/src/core/eval.cc" "src/CMakeFiles/regal.dir/core/eval.cc.o" "gcc" "src/CMakeFiles/regal.dir/core/eval.cc.o.d"
  "/root/repo/src/core/expr.cc" "src/CMakeFiles/regal.dir/core/expr.cc.o" "gcc" "src/CMakeFiles/regal.dir/core/expr.cc.o.d"
  "/root/repo/src/core/extended.cc" "src/CMakeFiles/regal.dir/core/extended.cc.o" "gcc" "src/CMakeFiles/regal.dir/core/extended.cc.o.d"
  "/root/repo/src/core/instance.cc" "src/CMakeFiles/regal.dir/core/instance.cc.o" "gcc" "src/CMakeFiles/regal.dir/core/instance.cc.o.d"
  "/root/repo/src/core/region_set.cc" "src/CMakeFiles/regal.dir/core/region_set.cc.o" "gcc" "src/CMakeFiles/regal.dir/core/region_set.cc.o.d"
  "/root/repo/src/doc/dictionary.cc" "src/CMakeFiles/regal.dir/doc/dictionary.cc.o" "gcc" "src/CMakeFiles/regal.dir/doc/dictionary.cc.o.d"
  "/root/repo/src/doc/sgml.cc" "src/CMakeFiles/regal.dir/doc/sgml.cc.o" "gcc" "src/CMakeFiles/regal.dir/doc/sgml.cc.o.d"
  "/root/repo/src/doc/srccode.cc" "src/CMakeFiles/regal.dir/doc/srccode.cc.o" "gcc" "src/CMakeFiles/regal.dir/doc/srccode.cc.o.d"
  "/root/repo/src/doc/synthetic.cc" "src/CMakeFiles/regal.dir/doc/synthetic.cc.o" "gcc" "src/CMakeFiles/regal.dir/doc/synthetic.cc.o.d"
  "/root/repo/src/fmft/emptiness.cc" "src/CMakeFiles/regal.dir/fmft/emptiness.cc.o" "gcc" "src/CMakeFiles/regal.dir/fmft/emptiness.cc.o.d"
  "/root/repo/src/fmft/formula.cc" "src/CMakeFiles/regal.dir/fmft/formula.cc.o" "gcc" "src/CMakeFiles/regal.dir/fmft/formula.cc.o.d"
  "/root/repo/src/fmft/general.cc" "src/CMakeFiles/regal.dir/fmft/general.cc.o" "gcc" "src/CMakeFiles/regal.dir/fmft/general.cc.o.d"
  "/root/repo/src/fmft/model.cc" "src/CMakeFiles/regal.dir/fmft/model.cc.o" "gcc" "src/CMakeFiles/regal.dir/fmft/model.cc.o.d"
  "/root/repo/src/fmft/reduction3cnf.cc" "src/CMakeFiles/regal.dir/fmft/reduction3cnf.cc.o" "gcc" "src/CMakeFiles/regal.dir/fmft/reduction3cnf.cc.o.d"
  "/root/repo/src/fmft/translate.cc" "src/CMakeFiles/regal.dir/fmft/translate.cc.o" "gcc" "src/CMakeFiles/regal.dir/fmft/translate.cc.o.d"
  "/root/repo/src/graph/algorithms.cc" "src/CMakeFiles/regal.dir/graph/algorithms.cc.o" "gcc" "src/CMakeFiles/regal.dir/graph/algorithms.cc.o.d"
  "/root/repo/src/graph/digraph.cc" "src/CMakeFiles/regal.dir/graph/digraph.cc.o" "gcc" "src/CMakeFiles/regal.dir/graph/digraph.cc.o.d"
  "/root/repo/src/graph/maxflow.cc" "src/CMakeFiles/regal.dir/graph/maxflow.cc.o" "gcc" "src/CMakeFiles/regal.dir/graph/maxflow.cc.o.d"
  "/root/repo/src/index/suffix_array.cc" "src/CMakeFiles/regal.dir/index/suffix_array.cc.o" "gcc" "src/CMakeFiles/regal.dir/index/suffix_array.cc.o.d"
  "/root/repo/src/index/word_index.cc" "src/CMakeFiles/regal.dir/index/word_index.cc.o" "gcc" "src/CMakeFiles/regal.dir/index/word_index.cc.o.d"
  "/root/repo/src/logic/cnf.cc" "src/CMakeFiles/regal.dir/logic/cnf.cc.o" "gcc" "src/CMakeFiles/regal.dir/logic/cnf.cc.o.d"
  "/root/repo/src/logic/dpll.cc" "src/CMakeFiles/regal.dir/logic/dpll.cc.o" "gcc" "src/CMakeFiles/regal.dir/logic/dpll.cc.o.d"
  "/root/repo/src/opt/chain.cc" "src/CMakeFiles/regal.dir/opt/chain.cc.o" "gcc" "src/CMakeFiles/regal.dir/opt/chain.cc.o.d"
  "/root/repo/src/opt/cost.cc" "src/CMakeFiles/regal.dir/opt/cost.cc.o" "gcc" "src/CMakeFiles/regal.dir/opt/cost.cc.o.d"
  "/root/repo/src/opt/exhaustive.cc" "src/CMakeFiles/regal.dir/opt/exhaustive.cc.o" "gcc" "src/CMakeFiles/regal.dir/opt/exhaustive.cc.o.d"
  "/root/repo/src/opt/optimizer.cc" "src/CMakeFiles/regal.dir/opt/optimizer.cc.o" "gcc" "src/CMakeFiles/regal.dir/opt/optimizer.cc.o.d"
  "/root/repo/src/query/engine.cc" "src/CMakeFiles/regal.dir/query/engine.cc.o" "gcc" "src/CMakeFiles/regal.dir/query/engine.cc.o.d"
  "/root/repo/src/query/lexer.cc" "src/CMakeFiles/regal.dir/query/lexer.cc.o" "gcc" "src/CMakeFiles/regal.dir/query/lexer.cc.o.d"
  "/root/repo/src/query/parser.cc" "src/CMakeFiles/regal.dir/query/parser.cc.o" "gcc" "src/CMakeFiles/regal.dir/query/parser.cc.o.d"
  "/root/repo/src/reduce/deletion.cc" "src/CMakeFiles/regal.dir/reduce/deletion.cc.o" "gcc" "src/CMakeFiles/regal.dir/reduce/deletion.cc.o.d"
  "/root/repo/src/reduce/reduce.cc" "src/CMakeFiles/regal.dir/reduce/reduce.cc.o" "gcc" "src/CMakeFiles/regal.dir/reduce/reduce.cc.o.d"
  "/root/repo/src/relational/extended_via_relational.cc" "src/CMakeFiles/regal.dir/relational/extended_via_relational.cc.o" "gcc" "src/CMakeFiles/regal.dir/relational/extended_via_relational.cc.o.d"
  "/root/repo/src/relational/table.cc" "src/CMakeFiles/regal.dir/relational/table.cc.o" "gcc" "src/CMakeFiles/regal.dir/relational/table.cc.o.d"
  "/root/repo/src/rig/grammar.cc" "src/CMakeFiles/regal.dir/rig/grammar.cc.o" "gcc" "src/CMakeFiles/regal.dir/rig/grammar.cc.o.d"
  "/root/repo/src/rig/minimal_set.cc" "src/CMakeFiles/regal.dir/rig/minimal_set.cc.o" "gcc" "src/CMakeFiles/regal.dir/rig/minimal_set.cc.o.d"
  "/root/repo/src/rig/rig.cc" "src/CMakeFiles/regal.dir/rig/rig.cc.o" "gcc" "src/CMakeFiles/regal.dir/rig/rig.cc.o.d"
  "/root/repo/src/storage/serialize.cc" "src/CMakeFiles/regal.dir/storage/serialize.cc.o" "gcc" "src/CMakeFiles/regal.dir/storage/serialize.cc.o.d"
  "/root/repo/src/text/pattern.cc" "src/CMakeFiles/regal.dir/text/pattern.cc.o" "gcc" "src/CMakeFiles/regal.dir/text/pattern.cc.o.d"
  "/root/repo/src/text/text.cc" "src/CMakeFiles/regal.dir/text/text.cc.o" "gcc" "src/CMakeFiles/regal.dir/text/text.cc.o.d"
  "/root/repo/src/text/tokenizer.cc" "src/CMakeFiles/regal.dir/text/tokenizer.cc.o" "gcc" "src/CMakeFiles/regal.dir/text/tokenizer.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/regal.dir/util/status.cc.o" "gcc" "src/CMakeFiles/regal.dir/util/status.cc.o.d"
  "/root/repo/src/util/stringutil.cc" "src/CMakeFiles/regal.dir/util/stringutil.cc.o" "gcc" "src/CMakeFiles/regal.dir/util/stringutil.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
