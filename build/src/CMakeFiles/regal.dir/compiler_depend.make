# Empty compiler generated dependencies file for regal.
# This may be replaced when dependencies are built.
