file(REMOVE_RECURSE
  "libregal.a"
)
