# Empty compiler generated dependencies file for regal_tests.
# This may be replaced when dependencies are built.
