
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/algebra_test.cpp" "tests/CMakeFiles/regal_tests.dir/algebra_test.cpp.o" "gcc" "tests/CMakeFiles/regal_tests.dir/algebra_test.cpp.o.d"
  "/root/repo/tests/construct_views_test.cpp" "tests/CMakeFiles/regal_tests.dir/construct_views_test.cpp.o" "gcc" "tests/CMakeFiles/regal_tests.dir/construct_views_test.cpp.o.d"
  "/root/repo/tests/dictionary_test.cpp" "tests/CMakeFiles/regal_tests.dir/dictionary_test.cpp.o" "gcc" "tests/CMakeFiles/regal_tests.dir/dictionary_test.cpp.o.d"
  "/root/repo/tests/differential_test.cpp" "tests/CMakeFiles/regal_tests.dir/differential_test.cpp.o" "gcc" "tests/CMakeFiles/regal_tests.dir/differential_test.cpp.o.d"
  "/root/repo/tests/expr_eval_test.cpp" "tests/CMakeFiles/regal_tests.dir/expr_eval_test.cpp.o" "gcc" "tests/CMakeFiles/regal_tests.dir/expr_eval_test.cpp.o.d"
  "/root/repo/tests/extended_test.cpp" "tests/CMakeFiles/regal_tests.dir/extended_test.cpp.o" "gcc" "tests/CMakeFiles/regal_tests.dir/extended_test.cpp.o.d"
  "/root/repo/tests/fmft_test.cpp" "tests/CMakeFiles/regal_tests.dir/fmft_test.cpp.o" "gcc" "tests/CMakeFiles/regal_tests.dir/fmft_test.cpp.o.d"
  "/root/repo/tests/general_formula_test.cpp" "tests/CMakeFiles/regal_tests.dir/general_formula_test.cpp.o" "gcc" "tests/CMakeFiles/regal_tests.dir/general_formula_test.cpp.o.d"
  "/root/repo/tests/graph_test.cpp" "tests/CMakeFiles/regal_tests.dir/graph_test.cpp.o" "gcc" "tests/CMakeFiles/regal_tests.dir/graph_test.cpp.o.d"
  "/root/repo/tests/index_test.cpp" "tests/CMakeFiles/regal_tests.dir/index_test.cpp.o" "gcc" "tests/CMakeFiles/regal_tests.dir/index_test.cpp.o.d"
  "/root/repo/tests/instance_test.cpp" "tests/CMakeFiles/regal_tests.dir/instance_test.cpp.o" "gcc" "tests/CMakeFiles/regal_tests.dir/instance_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/regal_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/regal_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/logic_test.cpp" "tests/CMakeFiles/regal_tests.dir/logic_test.cpp.o" "gcc" "tests/CMakeFiles/regal_tests.dir/logic_test.cpp.o.d"
  "/root/repo/tests/lowering_test.cpp" "tests/CMakeFiles/regal_tests.dir/lowering_test.cpp.o" "gcc" "tests/CMakeFiles/regal_tests.dir/lowering_test.cpp.o.d"
  "/root/repo/tests/opt_test.cpp" "tests/CMakeFiles/regal_tests.dir/opt_test.cpp.o" "gcc" "tests/CMakeFiles/regal_tests.dir/opt_test.cpp.o.d"
  "/root/repo/tests/query_test.cpp" "tests/CMakeFiles/regal_tests.dir/query_test.cpp.o" "gcc" "tests/CMakeFiles/regal_tests.dir/query_test.cpp.o.d"
  "/root/repo/tests/reduce_test.cpp" "tests/CMakeFiles/regal_tests.dir/reduce_test.cpp.o" "gcc" "tests/CMakeFiles/regal_tests.dir/reduce_test.cpp.o.d"
  "/root/repo/tests/region_test.cpp" "tests/CMakeFiles/regal_tests.dir/region_test.cpp.o" "gcc" "tests/CMakeFiles/regal_tests.dir/region_test.cpp.o.d"
  "/root/repo/tests/relational_test.cpp" "tests/CMakeFiles/regal_tests.dir/relational_test.cpp.o" "gcc" "tests/CMakeFiles/regal_tests.dir/relational_test.cpp.o.d"
  "/root/repo/tests/rig_test.cpp" "tests/CMakeFiles/regal_tests.dir/rig_test.cpp.o" "gcc" "tests/CMakeFiles/regal_tests.dir/rig_test.cpp.o.d"
  "/root/repo/tests/rog_integration_test.cpp" "tests/CMakeFiles/regal_tests.dir/rog_integration_test.cpp.o" "gcc" "tests/CMakeFiles/regal_tests.dir/rog_integration_test.cpp.o.d"
  "/root/repo/tests/sgml_test.cpp" "tests/CMakeFiles/regal_tests.dir/sgml_test.cpp.o" "gcc" "tests/CMakeFiles/regal_tests.dir/sgml_test.cpp.o.d"
  "/root/repo/tests/srccode_test.cpp" "tests/CMakeFiles/regal_tests.dir/srccode_test.cpp.o" "gcc" "tests/CMakeFiles/regal_tests.dir/srccode_test.cpp.o.d"
  "/root/repo/tests/storage_test.cpp" "tests/CMakeFiles/regal_tests.dir/storage_test.cpp.o" "gcc" "tests/CMakeFiles/regal_tests.dir/storage_test.cpp.o.d"
  "/root/repo/tests/text_test.cpp" "tests/CMakeFiles/regal_tests.dir/text_test.cpp.o" "gcc" "tests/CMakeFiles/regal_tests.dir/text_test.cpp.o.d"
  "/root/repo/tests/util_test.cpp" "tests/CMakeFiles/regal_tests.dir/util_test.cpp.o" "gcc" "tests/CMakeFiles/regal_tests.dir/util_test.cpp.o.d"
  "/root/repo/tests/wordmatch_exhaustive_test.cpp" "tests/CMakeFiles/regal_tests.dir/wordmatch_exhaustive_test.cpp.o" "gcc" "tests/CMakeFiles/regal_tests.dir/wordmatch_exhaustive_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/regal.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
