# Empty dependencies file for example_source_browser.
# This may be replaced when dependencies are built.
