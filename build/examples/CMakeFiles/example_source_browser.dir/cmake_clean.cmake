file(REMOVE_RECURSE
  "CMakeFiles/example_source_browser.dir/source_browser.cpp.o"
  "CMakeFiles/example_source_browser.dir/source_browser.cpp.o.d"
  "example_source_browser"
  "example_source_browser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_source_browser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
