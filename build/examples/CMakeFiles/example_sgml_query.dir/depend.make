# Empty dependencies file for example_sgml_query.
# This may be replaced when dependencies are built.
