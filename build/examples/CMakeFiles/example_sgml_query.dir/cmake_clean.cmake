file(REMOVE_RECURSE
  "CMakeFiles/example_sgml_query.dir/sgml_query.cpp.o"
  "CMakeFiles/example_sgml_query.dir/sgml_query.cpp.o.d"
  "example_sgml_query"
  "example_sgml_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_sgml_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
