# Empty compiler generated dependencies file for example_index_tool.
# This may be replaced when dependencies are built.
