file(REMOVE_RECURSE
  "CMakeFiles/example_index_tool.dir/index_tool.cpp.o"
  "CMakeFiles/example_index_tool.dir/index_tool.cpp.o.d"
  "example_index_tool"
  "example_index_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_index_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
