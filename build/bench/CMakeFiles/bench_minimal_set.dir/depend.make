# Empty dependencies file for bench_minimal_set.
# This may be replaced when dependencies are built.
