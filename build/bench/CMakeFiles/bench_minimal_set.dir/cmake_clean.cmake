file(REMOVE_RECURSE
  "CMakeFiles/bench_minimal_set.dir/bench_minimal_set.cpp.o"
  "CMakeFiles/bench_minimal_set.dir/bench_minimal_set.cpp.o.d"
  "bench_minimal_set"
  "bench_minimal_set.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_minimal_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
