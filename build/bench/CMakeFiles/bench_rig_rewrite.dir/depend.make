# Empty dependencies file for bench_rig_rewrite.
# This may be replaced when dependencies are built.
