file(REMOVE_RECURSE
  "CMakeFiles/bench_rig_rewrite.dir/bench_rig_rewrite.cpp.o"
  "CMakeFiles/bench_rig_rewrite.dir/bench_rig_rewrite.cpp.o.d"
  "bench_rig_rewrite"
  "bench_rig_rewrite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rig_rewrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
