file(REMOVE_RECURSE
  "CMakeFiles/bench_chain_optimizer.dir/bench_chain_optimizer.cpp.o"
  "CMakeFiles/bench_chain_optimizer.dir/bench_chain_optimizer.cpp.o.d"
  "bench_chain_optimizer"
  "bench_chain_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_chain_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
