# Empty dependencies file for bench_chain_optimizer.
# This may be replaced when dependencies are built.
