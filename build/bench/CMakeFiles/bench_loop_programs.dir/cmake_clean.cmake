file(REMOVE_RECURSE
  "CMakeFiles/bench_loop_programs.dir/bench_loop_programs.cpp.o"
  "CMakeFiles/bench_loop_programs.dir/bench_loop_programs.cpp.o.d"
  "bench_loop_programs"
  "bench_loop_programs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_loop_programs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
