# Empty compiler generated dependencies file for bench_loop_programs.
# This may be replaced when dependencies are built.
