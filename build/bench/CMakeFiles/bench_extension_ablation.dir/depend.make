# Empty dependencies file for bench_extension_ablation.
# This may be replaced when dependencies are built.
