file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_ablation.dir/bench_extension_ablation.cpp.o"
  "CMakeFiles/bench_extension_ablation.dir/bench_extension_ablation.cpp.o.d"
  "bench_extension_ablation"
  "bench_extension_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
