file(REMOVE_RECURSE
  "CMakeFiles/bench_direct_inclusion.dir/bench_direct_inclusion.cpp.o"
  "CMakeFiles/bench_direct_inclusion.dir/bench_direct_inclusion.cpp.o.d"
  "bench_direct_inclusion"
  "bench_direct_inclusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_direct_inclusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
