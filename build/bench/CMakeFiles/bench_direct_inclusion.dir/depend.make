# Empty dependencies file for bench_direct_inclusion.
# This may be replaced when dependencies are built.
