file(REMOVE_RECURSE
  "CMakeFiles/bench_both_included.dir/bench_both_included.cpp.o"
  "CMakeFiles/bench_both_included.dir/bench_both_included.cpp.o.d"
  "bench_both_included"
  "bench_both_included.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_both_included.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
