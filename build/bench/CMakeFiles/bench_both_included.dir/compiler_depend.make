# Empty compiler generated dependencies file for bench_both_included.
# This may be replaced when dependencies are built.
