// The optimization story of Sections 2.2, 3 and 5.1 end to end:
//  * RIG-based chain shortening (e1 -> e2) with cost estimates,
//  * bounded equivalence checking (emptiness of the symmetric difference),
//  * the Co-NP-hardness reduction from 3-CNF (Theorem 3.5), cross-checked
//    against the bundled DPLL solver,
//  * the minimal-set problem for the Section 6 loop program.

#include <iostream>

#include "doc/srccode.h"
#include "fmft/emptiness.h"
#include "fmft/reduction3cnf.h"
#include "fmft/translate.h"
#include "logic/dpll.h"
#include "opt/chain.h"
#include "opt/cost.h"
#include "opt/optimizer.h"
#include "rig/minimal_set.h"
#include "util/timer.h"

using regal::Expr;

int main() {
  regal::Digraph rig = regal::SourceCodeRig();

  // --- 1. RIG-based rewriting (the Section 2.2 example) ---
  regal::ExprPtr e1 = Expr::Chain(
      regal::OpKind::kIncluded, {"Name", "Proc_header", "Proc", "Program"});
  regal::OptimizerOptions options;
  options.rig = &rig;
  options.stats.default_cardinality = 10000;
  regal::OptimizeOutcome outcome = regal::Optimize(e1, options);
  std::cout << "e1 = " << e1->ToString() << "\n";
  std::cout << "optimized = " << outcome.expr->ToString() << "\n";
  std::cout << "estimated cost: " << outcome.cost_before.cost << " -> "
            << outcome.cost_after.cost << " ("
            << outcome.rules_applied << " rule applications)\n";
  // The outcome reports each rewrite that fired — no need to re-derive the
  // chain-shortening steps by hand.
  for (const regal::RewriteEvent& event : outcome.rewrites) {
    std::cout << "  fired " << event.ToString() << "\n";
  }
  std::cout << "\n";

  // --- 2. Equivalence checking via bounded emptiness ---
  regal::EmptinessOptions bounds;
  bounds.max_nodes = 6;
  bounds.max_depth = 5;
  auto rig_equiv = regal::CheckEquivalence(e1, outcome.expr, bounds, &rig);
  auto free_equiv = regal::CheckEquivalence(e1, outcome.expr, bounds);
  if (rig_equiv.ok() && free_equiv.ok()) {
    std::cout << "w.r.t. Figure 1's RIG: "
              << (rig_equiv->witness_found ? "NOT equivalent"
                                           : "no difference found")
              << " (" << rig_equiv->instances_checked << " instances)\n";
    std::cout << "over arbitrary instances: "
              << (free_equiv->witness_found ? "counterexample found"
                                            : "no difference found")
              << " — the rewrite is RIG-specific, as the paper says.\n\n";
  }

  // --- 3. The FMFT view (Proposition 3.3) ---
  auto formula = regal::AlgebraToFormula(outcome.expr);
  if (formula.ok()) {
    std::cout << "As a restricted FMFT formula:\n  "
              << (*formula)->ToString() << "\n\n";
  }

  // --- 4. Theorem 3.5: emptiness is Co-NP-hard ---
  regal::Rng rng(11);
  regal::Cnf cnf = regal::RandomKCnf(rng, 12, 50, 3);
  regal::CnfEmptinessReduction reduction = regal::CnfToEmptinessExpr(cnf);
  std::cout << "3-CNF with 12 vars / 50 clauses -> emptiness query with "
            << reduction.expr->NumOps() << " operators\n";
  int64_t checked = 0;
  double search_ms = 0;
  double dpll_ms = 0;
  bool empty = false;
  bool sat = false;
  {
    regal::ScopedTimer timed(&search_ms);
    empty = regal::EmptinessByAssignmentSearch(cnf, reduction.expr, &checked);
  }
  {
    regal::ScopedTimer timed(&dpll_ms);
    sat = regal::DpllSolve(cnf).has_value();
  }
  std::cout << "emptiness search: " << (empty ? "EMPTY" : "non-empty")
            << " after " << checked << " instances in " << search_ms
            << " ms; DPLL says " << (sat ? "SAT" : "UNSAT") << " in "
            << dpll_ms << " ms; verdicts "
            << ((empty == !sat) ? "agree" : "DISAGREE") << ".\n\n";

  // --- 5. The minimal-set problem (Prop 6.1) ---
  std::vector<std::string> chain{"Proc", "Proc_body", "Var"};
  auto exact = regal::MinimalSetExact(rig, chain);
  auto cuts = regal::MinimalSetPairwiseCuts(rig, chain);
  if (exact.ok() && cuts.ok()) {
    std::cout << "Loop-program All-set restriction for Proc ⊃_d Proc_body "
                 "⊃_d Var:\n  exact minimal separator set: {";
    for (size_t i = 0; i < exact->size(); ++i) {
      std::cout << (i ? ", " : "") << (*exact)[i];
    }
    std::cout << "}\n  pairwise min-cut approximation: {";
    for (size_t i = 0; i < cuts->size(); ++i) {
      std::cout << (i ? ", " : "") << (*cuts)[i];
    }
    std::cout << "}\n";
  }
  return 0;
}
