// Quickstart: build a region index over a small SGML document, then run
// PAT-style queries combining structure (within/including/before) and
// content (matching) — the core workflow of the paper's region algebra.

#include <iostream>

#include "query/engine.h"

namespace {

constexpr char kDocument[] = R"(<report>
<title>Quarterly engine report</title>
<section>
<heading>Storage</heading>
<para>The suffix array index was rebuilt twice.</para>
<para>Compaction ran nightly without incident.</para>
</section>
<section>
<heading>Query engine</heading>
<para>The region algebra operators were profiled.</para>
<para>The optimizer now removes redundant inclusion tests.</para>
</section>
</report>)";

void Run(regal::QueryEngine& engine, const std::string& query) {
  std::cout << "query> " << query << "\n";
  auto answer = engine.Run(query);
  if (!answer.ok()) {
    std::cout << "  error: " << answer.status() << "\n\n";
    return;
  }
  std::cout << "  executed: " << answer->executed->ToString() << "\n";
  for (const std::string& row : answer->Rows(engine.instance(), 5)) {
    std::cout << "  " << row << "\n";
  }
  if (answer->regions.empty()) std::cout << "  (no results)\n";
  std::cout << "\n";
}

}  // namespace

int main() {
  auto engine = regal::QueryEngine::FromSgmlSource(kDocument);
  if (!engine.ok()) {
    std::cerr << "failed to index document: " << engine.status() << "\n";
    return 1;
  }
  if (auto st = engine->Validate(); !st.ok()) {
    std::cerr << "invalid instance: " << st << "\n";
    return 1;
  }
  std::cout << "Indexed " << engine->instance().NumRegions()
            << " regions over " << engine->instance().names().size()
            << " region names.\n\n";

  // Structure only: paragraphs inside sections.
  Run(*engine, "para within section");
  // Content + structure: sections talking about the optimizer.
  Run(*engine, "section including (para matching \"optimizer\")");
  // Ordering: headings that precede a paragraph mentioning compaction.
  Run(*engine, "heading before (para matching \"Compaction\")");
  // Set operations: paragraphs not mentioning the index.
  Run(*engine, "(para within section) - (para matching \"index\")");
  // Both-included (Section 5.2 of the paper): sections where 'rebuilt'
  // appears in a paragraph before one mentioning 'nightly'.
  Run(*engine,
      "bi(section, para matching \"rebuilt\", para matching \"nightly\")");

  // Observability: `explain analyze` executes the query with span tracing
  // and returns the annotated plan (per-operator cardinalities, comparison
  // counters and wall time) in QueryAnswer::profile.
  std::string query =
      "explain analyze section including (para matching \"optimizer\")";
  std::cout << "query> " << query << "\n";
  auto profiled = engine->Run(query);
  if (!profiled.ok()) {
    std::cerr << "  error: " << profiled.status() << "\n";
    return 1;
  }
  std::cout << profiled->profile->Tree();
  return 0;
}
