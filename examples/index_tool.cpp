// A small command-line indexing tool: build a region index from an SGML
// document or a toy program, persist it, reopen it, and run queries —
// the index-once / query-many workflow of the PAT system.
//
// Usage:
//   example_index_tool build {sgml|program} <input-file> <index-file>
//   example_index_tool query <index-file> "<query>" ["<query>" ...]
//   example_index_tool demo            (self-contained walk-through)

#include <fstream>
#include <iostream>
#include <sstream>

#include "doc/dictionary.h"
#include "doc/sgml.h"
#include "doc/srccode.h"
#include "query/engine.h"
#include "storage/snapshot.h"
#include "util/timer.h"

namespace {

int Fail(const regal::Status& status) {
  std::cerr << "error: " << status << "\n";
  return 1;
}

regal::Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return regal::Status::NotFound("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

int Build(const std::string& format, const std::string& input,
          const std::string& output) {
  auto source = ReadFile(input);
  if (!source.ok()) return Fail(source.status());
  double build_ms = 0;
  regal::ScopedTimer timed(&build_ms);
  regal::Result<regal::Instance> instance =
      (format == "program") ? regal::ParseProgram(*source)
                            : regal::ParseSgml(*source);
  if (!instance.ok()) return Fail(instance.status());
  if (auto st = instance->Validate(); !st.ok()) return Fail(st);
  if (auto st = regal::storage::SaveSnapshotToFile(*instance, output);
      !st.ok()) {
    return Fail(st);
  }
  std::cout << "indexed " << source->size() << " bytes into "
            << instance->NumRegions() << " regions ("
            << instance->names().size() << " names) in " << timed.Millis()
            << " ms -> " << output << "\n";
  return 0;
}

int RunQueries(regal::QueryEngine& engine,
               const std::vector<std::string>& queries) {
  for (const std::string& query : queries) {
    std::cout << "query> " << query << "\n";
    auto answer = engine.Run(query);
    if (!answer.ok()) {
      std::cout << "  error: " << answer.status() << "\n";
      continue;
    }
    std::cout << "  " << answer->regions.size() << " result(s) in "
              << answer->elapsed_ms << " ms ("
              << answer->eval_stats.operator_evals << " operator evals)\n";
    for (const std::string& row : answer->Rows(engine.instance(), 5)) {
      std::cout << "  " << row << "\n";
    }
  }
  return 0;
}

int Query(const std::string& index_path,
          const std::vector<std::string>& queries) {
  // Sniffs REGAL2 vs legacy REGAL1 by magic, so old indexes keep working.
  auto instance = regal::storage::LoadSnapshotFromFile(index_path);
  if (!instance.ok()) return Fail(instance.status());
  regal::QueryEngine engine(std::move(instance).value());
  return RunQueries(engine, queries);
}

int Demo() {
  regal::DictionaryGeneratorOptions options;
  options.entries = 30;
  std::string source = regal::GenerateDictionarySource(options);
  std::string path = "/tmp/regal_demo.index";

  auto instance = regal::ParseSgml(source);
  if (!instance.ok()) return Fail(instance.status());
  if (auto st = regal::storage::SaveSnapshotToFile(*instance, path);
      !st.ok()) {
    return Fail(st);
  }
  std::cout << "built and saved a dictionary index (" << source.size()
            << " bytes) to " << path << "\n\n";
  return Query(path, {
                         "entry including (author matching \"MILTON\")",
                         "headword within (entry including "
                         "(pos matching \"v\"))",
                         "qtext after (def matching \"term3\")",
                     });
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.size() == 1 && args[0] == "demo") return Demo();
  if (args.size() == 4 && args[0] == "build") {
    if (args[1] != "sgml" && args[1] != "program") {
      std::cerr << "format must be 'sgml' or 'program'\n";
      return 1;
    }
    return Build(args[1], args[2], args[3]);
  }
  if (args.size() >= 3 && args[0] == "query") {
    return Query(args[1], {args.begin() + 2, args.end()});
  }
  std::cerr << "usage:\n"
            << "  " << argv[0] << " build {sgml|program} <input> <index>\n"
            << "  " << argv[0] << " query <index> \"<query>\" ...\n"
            << "  " << argv[0] << " demo\n";
  return args.empty() ? 0 : 1;
}
