// Querying a generated SGML play corpus (the OED/structured-document
// setting that motivated the PAT system): speeches by speaker, scenes with
// given word co-occurrences in order, and nesting navigation.

#include <iostream>

#include "doc/sgml.h"
#include "query/engine.h"

namespace {

void Run(regal::QueryEngine& engine, const std::string& comment,
         const std::string& query) {
  std::cout << comment << "\n  " << query << "\n";
  auto answer = engine.Run(query);
  if (!answer.ok()) {
    std::cout << "  error: " << answer.status() << "\n\n";
    return;
  }
  std::cout << "  " << answer->regions.size() << " result(s), "
            << answer->eval_stats.operator_evals << " operator evals, "
            << answer->elapsed_ms << " ms\n";
  for (const std::string& row : answer->Rows(engine.instance(), 3)) {
    std::cout << "  " << row << "\n";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  regal::PlayGeneratorOptions options;
  options.acts = 4;
  options.scenes_per_act = 5;
  options.speeches_per_scene = 12;
  options.lines_per_speech = 4;
  options.vocabulary = 60;
  options.seed = 2025;
  std::string source = regal::GeneratePlaySource(options);

  auto engine = regal::QueryEngine::FromSgmlSource(source);
  if (!engine.ok()) {
    std::cerr << "indexing failed: " << engine.status() << "\n";
    return 1;
  }
  std::cout << "Indexed a generated play: " << source.size() << " bytes, "
            << engine->instance().NumRegions() << " regions.\n\n";

  Run(*engine, "Speeches by HAMLET:",
      "speech including (speaker matching \"HAMLET\")");

  Run(*engine, "Scenes where OPHELIA speaks:",
      "scene including (speech including (speaker matching \"OPHELIA\"))");

  Run(*engine, "Lines mentioning word7 inside HAMLET speeches:",
      "(line matching \"word7\") within "
      "(speech including (speaker matching \"HAMLET\"))");

  Run(*engine,
      "Speeches where word1 appears in a line before a line with word2\n"
      "(both-included keeps the pair in the SAME speech):",
      "bi(speech, line matching \"word1\", line matching \"word2\")");

  Run(*engine,
      "Compare: the naive base-algebra attempt over-selects (pairs may\n"
      "span different speeches):",
      "speech including ((line matching \"word1\") before "
      "(line matching \"word2\"))");

  Run(*engine, "Acts whose first-ish scenes mention word3 (act > scene):",
      "act including (scene including (line matching \"word3\"))");

  Run(*engine, "Speakers that are followed by another speech of HAMLET:",
      "speaker before (speech including (speaker matching \"HAMLET\"))");
  return 0;
}
