// The paper's running example (Sections 2.2 and 5.1): querying program
// source code regions. Demonstrates
//  * the Figure 1 RIG and the e1 ≡ e2 rewrite,
//  * why plain ⊃ over-selects with nested procedures, and
//  * the direct-inclusion operators (dincluding) that fix it.

#include <iostream>

#include "core/eval.h"
#include "doc/srccode.h"
#include "query/engine.h"

namespace {

constexpr char kProgram[] =
    "program Main;\n"
    "var credits;\n"
    "proc outer;\n"
    "  var total;\n"
    "  proc inner;\n"
    "    var x;\n"
    "  begin write x end;\n"
    "begin call inner end;\n"
    "begin call outer end.\n";

void Show(regal::QueryEngine& engine, const std::string& label,
          const std::string& query) {
  std::cout << label << "\n  " << query << "\n";
  auto answer = engine.Run(query);
  if (!answer.ok()) {
    std::cout << "  error: " << answer.status() << "\n\n";
    return;
  }
  if (answer->rewrite_rules_applied > 0) {
    std::cout << "  optimizer rewrote to: " << answer->executed->ToString()
              << "\n";
  }
  for (const std::string& row : answer->Rows(engine.instance(), 6)) {
    std::cout << "  " << row << "\n";
  }
  if (answer->regions.empty()) std::cout << "  (no results)\n";
  std::cout << "\n";
}

}  // namespace

int main() {
  std::cout << "--- source program ---\n" << kProgram << "\n";
  auto engine = regal::QueryEngine::FromProgramSource(kProgram);
  if (!engine.ok()) {
    std::cerr << "parse failed: " << engine.status() << "\n";
    return 1;
  }
  if (auto st = engine->Validate(); !st.ok()) {
    std::cerr << "instance violates Figure 1's RIG: " << st << "\n";
    return 1;
  }

  Show(*engine, "Procedure names (the paper's e1; the optimizer derives e2):",
       "Name within Proc_header within Proc within Program");

  Show(*engine,
       "Procs CONTAINING a definition of x — transitive ⊃ over-selects\n"
       "(outer is reported although only inner defines x):",
       "Proc including (Proc_body including (Var matching \"x\"))");

  Show(*engine,
       "Procs DIRECTLY defining x — the Section 5.1 query, exact:",
       "Proc dincluding (Proc_body dincluding (Var matching \"x\"))");

  Show(*engine, "Variables declared at program level only:",
       "Var dwithin Prog_body");

  Show(*engine,
       "Procs declaring 'total' before a proc declaring 'x' appears:",
       "(Proc including (Var matching \"total\")) before "
       "(Var matching \"x\")");

  // A generated corpus, to show the same queries scale.
  regal::ProgramGeneratorOptions gen;
  gen.num_procs = 200;
  gen.max_nesting = 5;
  gen.seed = 77;
  auto big = regal::QueryEngine::FromProgramSource(
      regal::GenerateProgramSource(gen));
  if (!big.ok()) {
    std::cerr << "generator failed: " << big.status() << "\n";
    return 1;
  }
  auto answer = big->Run("Proc dincluding (Proc_body dincluding "
                         "(Var matching \"v1\"))");
  if (answer.ok()) {
    std::cout << "Generated corpus: " << big->instance().NumRegions()
              << " regions; procs directly defining v1: "
              << answer->regions.size() << " (in " << answer->elapsed_ms
              << " ms, " << answer->eval_stats.operator_evals
              << " operator evaluations)\n";
  }
  return 0;
}
