#!/usr/bin/env python3
"""Lints obs metric registrations in the C++ sources.

Every metric registered through obs::Registry::Get{Counter,Gauge,Histogram}
in src/ must follow the naming convention

    regal_<subsystem>_<noun>[_<unit>]

with these rules:

  * lowercase [a-z0-9_] only, at least three '_'-separated components,
    'regal' first;
  * the <subsystem> component is one of KNOWN_SUBSYSTEMS below — a new
    subsystem is a deliberate act (add it here in the same change), never
    a typo like 'regal_recvoery_...' silently minting a parallel family;
  * counters end in '_total' (Prometheus counter convention);
  * gauges and histograms do NOT end in '_total';
  * histograms end in a recognized unit suffix (_ms, _us, _s, _seconds,
    _bytes, _ratio) so the bucket bounds are interpretable;
  * one name is registered as exactly one kind — the same string must not
    appear as both a counter and a gauge anywhere in the tree.

Usage: check_metric_names.py <source-dir> [<source-dir>...]
Exits non-zero and prints one line per violation (file:line: message).
"""

import os
import re
import sys

REGISTRATION = re.compile(
    r'Get(Counter|Gauge|Histogram)\(\s*"([^"]*)"', re.MULTILINE)
NAME = re.compile(r"^regal_[a-z][a-z0-9]*(_[a-z0-9]+)+$")
HISTOGRAM_UNITS = ("_ms", "_us", "_s", "_seconds", "_bytes", "_ratio")
KNOWN_SUBSYSTEMS = frozenset({
    "admin",      # admin/admin_server.h (embedded admin endpoint)
    "cache",      # cache/result_cache.h
    "engine",     # query/engine.h
    "exec",       # exec/thread_pool.h
    "log",        # obs/log.h
    "queries",    # query counters (regal_queries_total{verb})
    "query",      # per-query latency/memory histograms
    "recorder",   # obs/flight_recorder.h
    "recovery",   # recovery/ (crash recovery, salvage, checkpoints)
    "resilience", # safety/admission.h + server/ (overload shedding,
                  # brownout, watchdog, drain, client retry/breaker)
    "safety",     # safety/ (admission, degradation, failpoints)
    "server",     # server/ (multi-tenant query service front-end)
    "storage",    # storage/ (snapshots, atomic writes)
    "wal",        # recovery/wal.h (write-ahead log)
})
SOURCE_EXTENSIONS = (".cc", ".h", ".cpp", ".hpp")


def find_sources(roots):
    for root in roots:
        if os.path.isfile(root):
            yield root
            continue
        for dirpath, _, filenames in os.walk(root):
            for filename in sorted(filenames):
                if filename.endswith(SOURCE_EXTENSIONS):
                    yield os.path.join(dirpath, filename)


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    errors = []
    # name -> (kind, first registration site), for duplicate-kind detection.
    kinds = {}
    registrations = 0
    for path in find_sources(argv[1:]):
        with open(path, encoding="utf-8") as f:
            text = f.read()
        for match in REGISTRATION.finditer(text):
            kind, name = match.group(1), match.group(2)
            line = text.count("\n", 0, match.start()) + 1
            site = f"{path}:{line}"
            registrations += 1

            if not NAME.match(name):
                errors.append(
                    f"{site}: '{name}' does not match "
                    "regal_<subsystem>_<noun>[_<unit>] "
                    "(lowercase, >= 3 components)")
                continue
            subsystem = name.split("_")[1]
            if subsystem not in KNOWN_SUBSYSTEMS:
                errors.append(
                    f"{site}: '{name}' uses unknown subsystem "
                    f"'{subsystem}' (add it to KNOWN_SUBSYSTEMS in "
                    "tools/check_metric_names.py if intentional)")
            if kind == "Counter" and not name.endswith("_total"):
                errors.append(
                    f"{site}: counter '{name}' must end in '_total'")
            if kind != "Counter" and name.endswith("_total"):
                errors.append(
                    f"{site}: {kind.lower()} '{name}' must not end in "
                    "'_total' (reserved for counters)")
            if kind == "Histogram" and not name.endswith(HISTOGRAM_UNITS):
                errors.append(
                    f"{site}: histogram '{name}' must end in a unit suffix "
                    f"({', '.join(HISTOGRAM_UNITS)})")

            previous = kinds.get(name)
            if previous is None:
                kinds[name] = (kind, site)
            elif previous[0] != kind:
                errors.append(
                    f"{site}: '{name}' registered as {kind} but as "
                    f"{previous[0]} at {previous[1]}")

    for error in errors:
        print(error)
    if errors:
        print(f"check_metric_names: {len(errors)} violation(s) in "
              f"{registrations} registration(s)")
        return 1
    print(f"check_metric_names: OK — {registrations} registration(s), "
          f"{len(kinds)} metric name(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
