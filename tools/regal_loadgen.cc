// regal_loadgen: a closed-loop load generator for the multi-tenant query
// service. N connections (round-robin across tenants) each fire synchronous
// requests back-to-back for the configured count, then the tool prints the
// tail-latency/throughput summary an operator sizing quotas actually reads:
//
//   regal_loadgen --port 7070 --connections 16 --tenants team-a,team-b
//                 --requests 500 --query "para within sec"   (one line)
//
// With --self-test it instead spins up an in-process service hosting two
// dictionary corpora and drives that — the ctest smoke run (label `server`)
// proving the whole client/server/governance stack end to end with zero
// external setup.

#include <atomic>
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "doc/dictionary.h"
#include "query/engine.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/service.h"
#include "util/status.h"
#include "util/timer.h"

namespace regal {
namespace {

struct LoadgenOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  int connections = 8;
  int requests_per_connection = 50;
  std::vector<std::string> tenants = {"team-a", "team-b"};
  std::string instance;  // Empty: let the service resolve (one hosted).
  std::string query = "para within sec";
  int64_t limit = 0;  // Row rendering off by default: measure the engine.
  bool self_test = false;
};

struct LoadResult {
  std::vector<double> latencies_ms;
  int64_t ok = 0;
  int64_t rejected = 0;   // Admission/backpressure: retryable by design.
  int64_t failed = 0;     // Engine or protocol errors.
  int64_t transport = 0;  // Connect/send/recv failures: always a bug here.
  double elapsed_s = 0;
};

double Percentile(std::vector<double>* sorted_ms, double p) {
  if (sorted_ms->empty()) return 0;
  std::sort(sorted_ms->begin(), sorted_ms->end());
  size_t index = static_cast<size_t>(p * static_cast<double>(
                                             sorted_ms->size() - 1));
  return (*sorted_ms)[index];
}

LoadResult RunLoad(const LoadgenOptions& options) {
  LoadResult result;
  std::mutex mu;
  std::vector<std::thread> threads;
  Timer wall;
  for (int c = 0; c < options.connections; ++c) {
    threads.emplace_back([&, c] {
      std::vector<double> latencies;
      int64_t ok = 0, rejected = 0, failed = 0, transport = 0;
      auto client = server::Client::Connect(options.host, options.port);
      if (!client.ok()) {
        std::lock_guard<std::mutex> lock(mu);
        result.transport += options.requests_per_connection;
        return;
      }
      server::Request request;
      request.tenant =
          options.tenants[static_cast<size_t>(c) % options.tenants.size()];
      request.instance = options.instance;
      request.query = options.query;
      request.limit = options.limit;
      for (int i = 0; i < options.requests_per_connection; ++i) {
        request.id = c * 1000000 + i;
        Timer timer;
        auto response = client->Call(request);
        if (!response.ok()) {
          ++transport;
          continue;
        }
        latencies.push_back(timer.Millis());
        if (response->ok) {
          ++ok;
        } else if (response->code == "RESOURCE_EXHAUSTED") {
          ++rejected;
        } else {
          ++failed;
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      result.latencies_ms.insert(result.latencies_ms.end(), latencies.begin(),
                                 latencies.end());
      result.ok += ok;
      result.rejected += rejected;
      result.failed += failed;
      result.transport += transport;
    });
  }
  for (auto& t : threads) t.join();
  result.elapsed_s = wall.Seconds();
  return result;
}

int Report(const LoadgenOptions& options, LoadResult result) {
  const double p50 = Percentile(&result.latencies_ms, 0.50);
  const double p99 = Percentile(&result.latencies_ms, 0.99);
  const int64_t total = result.ok + result.rejected + result.failed;
  const double qps =
      result.elapsed_s > 0 ? static_cast<double>(total) / result.elapsed_s : 0;
  std::printf(
      "connections=%d tenants=%zu requests=%lld ok=%lld rejected=%lld "
      "failed=%lld transport_errors=%lld\n",
      options.connections, options.tenants.size(),
      static_cast<long long>(total), static_cast<long long>(result.ok),
      static_cast<long long>(result.rejected),
      static_cast<long long>(result.failed),
      static_cast<long long>(result.transport));
  std::printf("elapsed_s=%.3f qps=%.1f p50_ms=%.3f p99_ms=%.3f\n",
              result.elapsed_s, qps, p50, p99);
  return result.transport == 0 && result.failed == 0 && result.ok > 0 ? 0 : 1;
}

int SelfTest(LoadgenOptions options) {
  server::ServiceOptions service_options;
  auto service = server::QueryService::Start(service_options);
  if (!service.ok()) {
    std::fprintf(stderr, "self-test: %s\n",
                 service.status().ToString().c_str());
    return 1;
  }
  DictionaryGeneratorOptions corpus;
  corpus.entries = 100;
  for (const char* name : {"corpus1", "corpus2"}) {
    auto engine = QueryEngine::FromSgmlSource(GenerateDictionarySource(corpus));
    if (!engine.ok()) {
      std::fprintf(stderr, "self-test: %s\n",
                   engine.status().ToString().c_str());
      return 1;
    }
    Status added = (*service)->AddInstance(name, std::move(engine).value());
    if (!added.ok()) {
      std::fprintf(stderr, "self-test: %s\n", added.ToString().c_str());
      return 1;
    }
  }
  options.port = (*service)->port();
  options.instance = "corpus1";
  options.query = "def within sense";
  std::printf("self-test service on port %d\n", options.port);
  int exit_code = Report(options, RunLoad(options));
  // The drain path is part of the smoke test: Stop() must return with
  // every handler joined, not hang on a dead connection.
  (*service)->Stop();
  std::printf("self-test %s\n", exit_code == 0 ? "passed" : "FAILED");
  return exit_code;
}

std::vector<std::string> SplitCommas(const std::string& csv) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= csv.size()) {
    size_t comma = csv.find(',', start);
    if (comma == std::string::npos) comma = csv.size();
    if (comma > start) out.push_back(csv.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --port P [--host H] [--connections N] [--requests R]\n"
      "          [--tenants a,b,...] [--instance NAME] [--query Q]\n"
      "          [--limit L] | --self-test\n",
      argv0);
  return 2;
}

int Main(int argc, char** argv) {
  LoadgenOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--self-test") {
      options.self_test = true;
    } else if (arg == "--host" && (v = value()) != nullptr) {
      options.host = v;
    } else if (arg == "--port" && (v = value()) != nullptr) {
      options.port = std::atoi(v);
    } else if (arg == "--connections" && (v = value()) != nullptr) {
      options.connections = std::atoi(v);
    } else if (arg == "--requests" && (v = value()) != nullptr) {
      options.requests_per_connection = std::atoi(v);
    } else if (arg == "--tenants" && (v = value()) != nullptr) {
      options.tenants = SplitCommas(v);
    } else if (arg == "--instance" && (v = value()) != nullptr) {
      options.instance = v;
    } else if (arg == "--query" && (v = value()) != nullptr) {
      options.query = v;
    } else if (arg == "--limit" && (v = value()) != nullptr) {
      options.limit = std::atoll(v);
    } else {
      return Usage(argv[0]);
    }
  }
  if (options.tenants.empty() || options.connections <= 0 ||
      options.requests_per_connection <= 0) {
    return Usage(argv[0]);
  }
  if (options.self_test) return SelfTest(std::move(options));
  if (options.port <= 0) return Usage(argv[0]);
  return Report(options, RunLoad(options));
}

}  // namespace
}  // namespace regal

int main(int argc, char** argv) { return regal::Main(argc, argv); }
