// regal_loadgen: a closed-loop load generator for the multi-tenant query
// service. N connections (round-robin across tenants) each fire synchronous
// requests back-to-back for the configured count, then the tool prints the
// tail-latency/throughput summary an operator sizing quotas actually reads:
//
//   regal_loadgen --port 7070 --connections 16 --tenants team-a,team-b
//                 --requests 500 --query "para within sec"   (one line)
//
// With --open-loop --rate R it switches to a fixed-arrival-rate generator:
// requests depart on a schedule (R per second, split across connections)
// regardless of how fast responses come back, which is the only honest way
// to measure an overloaded service — a closed loop slows its own offered
// load to match the server and hides the very queueing it should expose
// (coordinated omission). Latency is measured from each request's
// *scheduled* departure, typed OVERLOADED sheds are counted separately
// from failures, and the tool reports goodput alongside raw qps.
//
// With --self-test it instead spins up an in-process service hosting two
// dictionary corpora and drives that — the ctest smoke run (label `server`)
// proving the whole client/server/governance stack end to end with zero
// external setup. --self-test composes with --open-loop.

#include <atomic>
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "doc/dictionary.h"
#include "query/engine.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/service.h"
#include "util/status.h"
#include "util/timer.h"

namespace regal {
namespace {

struct LoadgenOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  int connections = 8;
  int requests_per_connection = 50;
  std::vector<std::string> tenants = {"team-a", "team-b"};
  std::string instance;  // Empty: let the service resolve (one hosted).
  std::string query = "para within sec";
  int64_t limit = 0;  // Row rendering off by default: measure the engine.
  bool self_test = false;
  bool open_loop = false;
  double rate = 0;     // Open loop: total target arrivals/second.
  int duration_s = 5;  // Open loop: how long to sustain the rate.
};

struct LoadResult {
  std::vector<double> latencies_ms;
  int64_t sent = 0;       // Requests that went onto the wire.
  int64_t ok = 0;
  int64_t shed = 0;       // Typed OVERLOADED replies: the server saying
                          // "not now", by design — never a failure.
  int64_t rejected = 0;   // Admission/backpressure: retryable by design.
  int64_t failed = 0;     // Engine or protocol errors.
  int64_t transport = 0;  // Connect/send/recv failures: always a bug here.
  double elapsed_s = 0;
};

void Classify(const server::Response& response, int64_t* ok, int64_t* shed,
              int64_t* rejected, int64_t* failed) {
  if (response.ok) {
    ++*ok;
  } else if (response.code == "OVERLOADED") {
    ++*shed;
  } else if (response.code == "RESOURCE_EXHAUSTED") {
    ++*rejected;
  } else {
    ++*failed;
  }
}

double Percentile(std::vector<double>* sorted_ms, double p) {
  if (sorted_ms->empty()) return 0;
  std::sort(sorted_ms->begin(), sorted_ms->end());
  size_t index = static_cast<size_t>(p * static_cast<double>(
                                             sorted_ms->size() - 1));
  return (*sorted_ms)[index];
}

LoadResult RunLoad(const LoadgenOptions& options) {
  LoadResult result;
  std::mutex mu;
  std::vector<std::thread> threads;
  Timer wall;
  for (int c = 0; c < options.connections; ++c) {
    threads.emplace_back([&, c] {
      std::vector<double> latencies;
      int64_t ok = 0, rejected = 0, failed = 0, transport = 0;
      auto client = server::Client::Connect(options.host, options.port);
      if (!client.ok()) {
        std::lock_guard<std::mutex> lock(mu);
        result.transport += options.requests_per_connection;
        return;
      }
      server::Request request;
      request.tenant =
          options.tenants[static_cast<size_t>(c) % options.tenants.size()];
      request.instance = options.instance;
      request.query = options.query;
      request.limit = options.limit;
      int64_t shed = 0;
      for (int i = 0; i < options.requests_per_connection; ++i) {
        request.id = c * 1000000 + i;
        Timer timer;
        auto response = client->Call(request);
        if (!response.ok()) {
          ++transport;
          continue;
        }
        latencies.push_back(timer.Millis());
        Classify(*response, &ok, &shed, &rejected, &failed);
      }
      std::lock_guard<std::mutex> lock(mu);
      result.latencies_ms.insert(result.latencies_ms.end(), latencies.begin(),
                                 latencies.end());
      result.sent += options.requests_per_connection;
      result.ok += ok;
      result.shed += shed;
      result.rejected += rejected;
      result.failed += failed;
      result.transport += transport;
    });
  }
  for (auto& t : threads) t.join();
  result.elapsed_s = wall.Seconds();
  return result;
}

// One open-loop connection: the sender fires requests on a fixed schedule
// (rate/connections per second) no matter how slowly responses arrive; a
// paired reader consumes responses — in order, which the wire protocol
// guarantees per connection — and attributes each latency to the request's
// *scheduled* departure time, so a stalled server shows up as tail latency
// instead of silently throttling the offered load.
void OpenLoopConnection(const LoadgenOptions& options, int c, std::mutex* mu,
                        LoadResult* result) {
  const double per_conn_rate =
      options.rate / static_cast<double>(options.connections);
  const double gap_ms = 1000.0 / per_conn_rate;
  const int64_t to_send = std::max<int64_t>(
      1, static_cast<int64_t>(per_conn_rate * options.duration_s));

  std::vector<double> latencies;
  int64_t ok = 0, shed = 0, rejected = 0, failed = 0;
  int64_t send_transport = 0, read_transport = 0;
  auto client = server::Client::Connect(options.host, options.port);
  if (!client.ok()) {
    std::lock_guard<std::mutex> lock(*mu);
    result->transport += to_send;
    return;
  }
  server::Request request;
  request.tenant =
      options.tenants[static_cast<size_t>(c) % options.tenants.size()];
  request.instance = options.instance;
  request.query = options.query;
  request.limit = options.limit;

  std::atomic<int64_t> sent{0};
  std::atomic<bool> sender_done{false};
  Timer clock;
  std::thread reader([&] {
    int64_t consumed = 0;
    while (true) {
      if (consumed >= sent.load(std::memory_order_acquire)) {
        if (sender_done.load(std::memory_order_acquire) &&
            consumed >= sent.load(std::memory_order_acquire)) {
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        continue;
      }
      auto response = client->ReadResponse();
      if (!response.ok()) {
        ++read_transport;  // Everything still in flight died with the
        break;             // connection; counted once, not per request.
      }
      latencies.push_back(clock.Millis() -
                          static_cast<double>(consumed) * gap_ms);
      ++consumed;
      Classify(*response, &ok, &shed, &rejected, &failed);
    }
  });
  for (int64_t i = 0; i < to_send; ++i) {
    const double depart_ms = static_cast<double>(i) * gap_ms;
    for (double now = clock.Millis(); now < depart_ms;
         now = clock.Millis()) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          std::min(depart_ms - now, 5.0)));
    }
    request.id = c * 1000000 + i;
    if (!client->SendRaw(
            server::EncodeFrame(server::RenderRequest(request)))) {
      ++send_transport;
      break;
    }
    sent.fetch_add(1, std::memory_order_release);
  }
  sender_done.store(true, std::memory_order_release);
  reader.join();

  std::lock_guard<std::mutex> lock(*mu);
  result->latencies_ms.insert(result->latencies_ms.end(), latencies.begin(),
                              latencies.end());
  result->sent += sent.load(std::memory_order_relaxed);
  result->ok += ok;
  result->shed += shed;
  result->rejected += rejected;
  result->failed += failed;
  result->transport += send_transport + read_transport;
}

LoadResult RunOpenLoad(const LoadgenOptions& options) {
  LoadResult result;
  std::mutex mu;
  std::vector<std::thread> threads;
  Timer wall;
  for (int c = 0; c < options.connections; ++c) {
    threads.emplace_back(OpenLoopConnection, std::cref(options), c, &mu,
                         &result);
  }
  for (auto& t : threads) t.join();
  result.elapsed_s = wall.Seconds();
  return result;
}

int Report(const LoadgenOptions& options, LoadResult result) {
  const double p50 = Percentile(&result.latencies_ms, 0.50);
  const double p99 = Percentile(&result.latencies_ms, 0.99);
  const int64_t answered =
      result.ok + result.shed + result.rejected + result.failed;
  const double qps = result.elapsed_s > 0
                         ? static_cast<double>(answered) / result.elapsed_s
                         : 0;
  const double goodput = result.elapsed_s > 0
                             ? static_cast<double>(result.ok) /
                                   result.elapsed_s
                             : 0;
  std::printf(
      "connections=%d tenants=%zu sent=%lld ok=%lld shed=%lld "
      "rejected=%lld failed=%lld transport_errors=%lld\n",
      options.connections, options.tenants.size(),
      static_cast<long long>(result.sent), static_cast<long long>(result.ok),
      static_cast<long long>(result.shed),
      static_cast<long long>(result.rejected),
      static_cast<long long>(result.failed),
      static_cast<long long>(result.transport));
  if (options.open_loop) {
    const double send_rate =
        result.elapsed_s > 0
            ? static_cast<double>(result.sent) / result.elapsed_s
            : 0;
    std::printf("open_loop target_rate=%.1f send_rate=%.1f\n", options.rate,
                send_rate);
  }
  std::printf(
      "elapsed_s=%.3f qps=%.1f goodput_qps=%.1f p50_ms=%.3f p99_ms=%.3f\n",
      result.elapsed_s, qps, goodput, p50, p99);
  // Sheds and quota rejections are the service working as designed; only
  // transport trouble, hard failures or a total absence of successes make
  // a load run exit nonzero.
  return result.transport == 0 && result.failed == 0 && result.ok > 0 ? 0 : 1;
}

int SelfTest(LoadgenOptions options) {
  server::ServiceOptions service_options;
  auto service = server::QueryService::Start(service_options);
  if (!service.ok()) {
    std::fprintf(stderr, "self-test: %s\n",
                 service.status().ToString().c_str());
    return 1;
  }
  DictionaryGeneratorOptions corpus;
  corpus.entries = 100;
  for (const char* name : {"corpus1", "corpus2"}) {
    auto engine = QueryEngine::FromSgmlSource(GenerateDictionarySource(corpus));
    if (!engine.ok()) {
      std::fprintf(stderr, "self-test: %s\n",
                   engine.status().ToString().c_str());
      return 1;
    }
    Status added = (*service)->AddInstance(name, std::move(engine).value());
    if (!added.ok()) {
      std::fprintf(stderr, "self-test: %s\n", added.ToString().c_str());
      return 1;
    }
  }
  options.port = (*service)->port();
  options.instance = "corpus1";
  options.query = "def within sense";
  std::printf("self-test service on port %d\n", options.port);
  int exit_code = Report(
      options, options.open_loop ? RunOpenLoad(options) : RunLoad(options));
  // The drain path is part of the smoke test: Stop() must return with
  // every handler joined, not hang on a dead connection.
  (*service)->Stop();
  std::printf("self-test %s\n", exit_code == 0 ? "passed" : "FAILED");
  return exit_code;
}

std::vector<std::string> SplitCommas(const std::string& csv) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= csv.size()) {
    size_t comma = csv.find(',', start);
    if (comma == std::string::npos) comma = csv.size();
    if (comma > start) out.push_back(csv.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --port P [--host H] [--connections N] [--requests R]\n"
      "          [--tenants a,b,...] [--instance NAME] [--query Q]\n"
      "          [--limit L] [--open-loop --rate R [--duration S]]\n"
      "          | --self-test [--open-loop --rate R]\n",
      argv0);
  return 2;
}

int Main(int argc, char** argv) {
  LoadgenOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--self-test") {
      options.self_test = true;
    } else if (arg == "--host" && (v = value()) != nullptr) {
      options.host = v;
    } else if (arg == "--port" && (v = value()) != nullptr) {
      options.port = std::atoi(v);
    } else if (arg == "--connections" && (v = value()) != nullptr) {
      options.connections = std::atoi(v);
    } else if (arg == "--requests" && (v = value()) != nullptr) {
      options.requests_per_connection = std::atoi(v);
    } else if (arg == "--tenants" && (v = value()) != nullptr) {
      options.tenants = SplitCommas(v);
    } else if (arg == "--instance" && (v = value()) != nullptr) {
      options.instance = v;
    } else if (arg == "--query" && (v = value()) != nullptr) {
      options.query = v;
    } else if (arg == "--limit" && (v = value()) != nullptr) {
      options.limit = std::atoll(v);
    } else if (arg == "--open-loop") {
      options.open_loop = true;
    } else if (arg == "--rate" && (v = value()) != nullptr) {
      options.rate = std::atof(v);
    } else if (arg == "--duration" && (v = value()) != nullptr) {
      options.duration_s = std::atoi(v);
    } else {
      return Usage(argv[0]);
    }
  }
  if (options.tenants.empty() || options.connections <= 0 ||
      options.requests_per_connection <= 0) {
    return Usage(argv[0]);
  }
  if (options.open_loop && (options.rate <= 0 || options.duration_s <= 0)) {
    return Usage(argv[0]);
  }
  if (options.self_test) return SelfTest(std::move(options));
  if (options.port <= 0) return Usage(argv[0]);
  return Report(options,
                options.open_loop ? RunOpenLoad(options) : RunLoad(options));
}

}  // namespace
}  // namespace regal

int main(int argc, char** argv) { return regal::Main(argc, argv); }
